//! Harris's list + wait-free get under CDRC reference counting.
//!
//! Chain unlinks transfer one count to the new link and release the chain
//! head's count; the rest of the chain is freed by the destruction cascade
//! (each dying node decrements its successor).

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

use cdrc::{alloc, defer_decr, incr, Counted, LocalHandle};
use smr_common::tagged::TAG_DELETED;
use smr_common::{Atomic, Backoff, ConcurrentMap, Shared};

use super::Node;

type Ptr<K, V> = Shared<Counted<Node<K, V>>>;

/// Harris's list with wait-free get, CDRC flavor.
pub struct HHSList<K, V> {
    head: Atomic<Counted<Node<K, V>>>,
}

unsafe impl<K: Send + Sync, V: Send + Sync> Send for HHSList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HHSList<K, V> {}

struct FindResult<K, V> {
    found: bool,
    prev: *const Atomic<Counted<Node<K, V>>>,
    cur: Ptr<K, V>,
}

impl<K, V> HHSList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty list.
    pub fn new() -> Self {
        Self {
            head: Atomic::null(),
        }
    }

    fn find(&self, key: &K, guard: &cdrc::Guard<'_>) -> FindResult<K, V> {
        'retry: loop {
            let mut prev: *const Atomic<Counted<Node<K, V>>> = &self.head;
            let mut chain_start = unsafe { &*prev }.load(Acquire).with_tag(0);
            let mut cur = chain_start;

            let found = loop {
                if cur.is_null() {
                    break false;
                }
                let cur_node = unsafe { cur.deref() };
                let next = cur_node.next.load(Acquire);
                if next.tag() & TAG_DELETED != 0 {
                    cur = next.with_tag(0);
                    continue;
                }
                match cur_node.key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        prev = &cur_node.next;
                        chain_start = next.with_tag(0);
                        cur = chain_start;
                    }
                    std::cmp::Ordering::Equal => break true,
                    std::cmp::Ordering::Greater => break false,
                }
            };

            if chain_start != cur {
                // Unlink [chain_start .. cur): prev takes a count on cur...
                if !cur.is_null() {
                    unsafe { incr(cur) };
                }
                match unsafe { &*prev }.compare_exchange(chain_start, cur, AcqRel, Acquire) {
                    Ok(_) => {
                        // ...and releases chain_start; the cascade frees the
                        // interior (each node decrements its successor).
                        unsafe { defer_decr(guard, chain_start) };
                    }
                    Err(_) => {
                        if !cur.is_null() {
                            unsafe { defer_decr(guard, cur) };
                        }
                        continue 'retry;
                    }
                }
            }
            return FindResult { found, prev, cur };
        }
    }

    pub(crate) fn get_impl(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        // Wait-free: walk straight through marked nodes, no cleanup.
        let guard = handle.pin();
        let _ = &guard;
        let mut cur = self.head.load(Acquire).with_tag(0);
        while !cur.is_null() {
            let node = unsafe { cur.deref() };
            let next = node.next.load(Acquire);
            match node.key.cmp(key) {
                std::cmp::Ordering::Less => cur = next.with_tag(0),
                std::cmp::Ordering::Equal => {
                    return if next.tag() & TAG_DELETED == 0 {
                        Some(node.value.clone())
                    } else {
                        None
                    };
                }
                std::cmp::Ordering::Greater => return None,
            }
        }
        None
    }

    pub(crate) fn insert_impl(&self, handle: &mut LocalHandle, key: K, value: V) -> bool {
        let guard = handle.pin();
        let node = alloc(Node {
            next: Atomic::null(),
            key,
            value,
        });
        let node_ref = unsafe { node.deref() };
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(&node_ref.key, &guard);
            if r.found {
                unsafe { defer_decr(&guard, node) };
                return false;
            }
            let old_next = node_ref.next.load(Relaxed);
            if old_next != r.cur {
                if !r.cur.is_null() {
                    unsafe { incr(r.cur) };
                }
                node_ref.next.store(r.cur, Relaxed);
                if !old_next.with_tag(0).is_null() {
                    unsafe { defer_decr(&guard, old_next.with_tag(0)) };
                }
            }
            match unsafe { &*r.prev }.compare_exchange(r.cur, node, AcqRel, Acquire) {
                Ok(_) => {
                    if !r.cur.is_null() {
                        unsafe { defer_decr(&guard, r.cur) };
                    }
                    return true;
                }
                Err(_) => {
                    backoff.cas_failed();
                    continue;
                }
            }
        }
    }

    pub(crate) fn remove_impl(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        let guard = handle.pin();
        let mut backoff = Backoff::new();
        loop {
            let r = self.find(key, &guard);
            if !r.found {
                return None;
            }
            let cur_node = unsafe { r.cur.deref() };
            let next = cur_node.next.fetch_or_tag(TAG_DELETED, AcqRel);
            if next.tag() & TAG_DELETED != 0 {
                backoff.cas_failed();
                continue;
            }
            let value = cur_node.value.clone();
            let next_clean = next.with_tag(0);
            if !next_clean.is_null() {
                unsafe { incr(next_clean) };
            }
            if unsafe { &*r.prev }
                .compare_exchange(r.cur, next_clean, AcqRel, Acquire)
                .is_ok()
            {
                unsafe { defer_decr(&guard, r.cur) };
            } else if !next_clean.is_null() {
                unsafe { defer_decr(&guard, next_clean) };
            }
            return Some(value);
        }
    }
}

impl<K, V> Default for HHSList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for HHSList<K, V> {
    fn drop(&mut self) {
        // See `hm_list::drop_list_via_cascade`: pending deferred decrements
        // forbid freeing in place.
        super::hm_list::drop_list_via_cascade(&self.head);
    }
}

impl<K, V> ConcurrentMap<K, V> for HHSList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type Handle = LocalHandle;

    fn new() -> Self {
        HHSList::new()
    }

    fn handle(&self) -> LocalHandle {
        cdrc::default_collector().register()
    }

    fn get(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        self.get_impl(handle, key)
    }

    fn insert(&self, handle: &mut LocalHandle, key: K, value: V) -> bool {
        self.insert_impl(handle, key, value)
    }

    fn remove(&self, handle: &mut LocalHandle, key: &K) -> Option<V> {
        self.remove_impl(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_utils;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<HHSList<u64, u64>>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<HHSList<u64, u64>>(8, 1024);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<HHSList<u64, u64>>(4, 64);
    }
}
