//! The benchmark data-structure suite (paper §5).
//!
//! Every structure implements [`smr_common::ConcurrentMap`] and comes in up
//! to three flavors, mirroring how the paper applies each reclamation
//! scheme:
//!
//! * [`guarded`] — generic over [`smr_common::GuardedScheme`], usable with
//!   NR, EBR, and PEBR (ejection checks are injected through the guard's
//!   `validate()` hook).
//! * [`hp`] — the original hazard pointers with hand-over-hand validated
//!   protection (careful traversal only; §2.2).
//! * [`hpp`] — HP++ protection with optimistic traversal (`try_protect` /
//!   `try_unlink`; §3).
//! * [`cdrc`] — concurrent deferred reference counting (`Rc`/`AtomicRc`).
//!
//! | structure | guarded | hp | hpp | cdrc |
//! |---|---|---|---|---|
//! | `HMList` (Harris–Michael) | ✓ | ✓ | ✓ | ✓ |
//! | `HHSList` (Harris + wait-free get) | ✓ | — | ✓ | ✓ |
//! | `HashMap` (chaining) | ✓ | ✓ | ✓ | ✓ |
//! | `SkipList` | ✓ | ✓ | ✓ (hybrid) | — |
//! | `NMTree` (Natarajan–Mittal) | ✓ | — | ✓ | — |
//! | `EFRBTree` (Ellen et al.) | ✓ | ✓ | ✓ (hybrid) | — |
//! | `BonsaiTree` (COW path-copy) | ✓ | ✓ | ✓ | — |
//! | `TreiberStack` | — | ✓ | ✓ | — |
//! | `ElimStack` (Treiber + elimination) | — | ✓ | ✓ | — |
//! | `MSQueue` | ✓ | ✓ | — | — |
//! | `OptQueue` (Ladan-Mozes–Shavit) | ✓ | — | — | — |
//!
//! The missing cells are the paper's inapplicability results: HP cannot
//! protect optimistic traversal (HHSList, NMTree — §2.3), and the paper
//! omits the RC trees as well.
//!
//! The stacks and queues are *bags*, not maps; [`bag::BagMap`] adapts them
//! to the [`ConcurrentMap`] interface so the bench runner can drive them.

#![warn(missing_docs)]
// Closures passed to `try_unlink` sit inside an outer `unsafe` call yet keep
// their own `unsafe` blocks for readability; silence the resulting lint.
#![allow(unused_unsafe)]

pub mod bag;
pub(crate) mod bonsai_core;
pub mod cdrc;
pub(crate) mod elim;
pub mod guarded;
pub mod hash_map;
pub mod hp_family;
pub mod hp;
pub mod hpp;

pub use smr_common::{ConcurrentMap, GuardedScheme, SchemeGuard};

/// Named fault-injection points compiled into this crate (each a
/// `smr_common::fault_point!` site; no-ops without the `fault-injection`
/// feature). DESIGN.md §1.7 documents the invariant each one attacks.
pub const FAULT_POINTS: &[&str] = &["ds::guarded::traverse::validate"];

#[cfg(test)]
mod edge_tests;
#[cfg(test)]
pub(crate) mod test_utils;
