//! Chaining hash table: a fixed array of buckets, one list per bucket
//! (paper §5: HMList buckets for HP, HHSList buckets for the others).

use std::hash::{Hash, Hasher};

use smr_common::ConcurrentMap;

/// Default bucket count, sized for the paper's big key range (100 K keys at
/// ~50% fill → load factor ≈ 1.7).
pub const DEFAULT_BUCKETS: usize = 30029; // prime

/// A chaining hash map over any list-shaped `ConcurrentMap`.
pub struct HashMap<K, V, L> {
    buckets: Vec<L>,
    _marker: std::marker::PhantomData<(K, V)>,
}

impl<K, V, L> HashMap<K, V, L>
where
    K: Hash,
    L: ConcurrentMap<K, V>,
{
    /// Creates a map with [`DEFAULT_BUCKETS`] buckets.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a map with `n` buckets.
    pub fn with_buckets(n: usize) -> Self {
        Self::with_buckets_by(n, L::new)
    }

    /// Creates a map with `n` buckets built by `make`. Per-instance state
    /// — most importantly a dedicated reclamation domain shared by every
    /// bucket of one map — threads through the closure.
    pub fn with_buckets_by(n: usize, mut make: impl FnMut() -> L) -> Self {
        assert!(n > 0, "bucket count must be positive");
        Self {
            buckets: (0..n).map(|_| make()).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket(&self, key: &K) -> &L {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.buckets.len();
        &self.buckets[idx]
    }
}

impl<K, V, L> Default for HashMap<K, V, L>
where
    K: Hash,
    L: ConcurrentMap<K, V>,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, L> ConcurrentMap<K, V> for HashMap<K, V, L>
where
    K: Hash + Send + Sync,
    V: Send + Sync,
    L: ConcurrentMap<K, V> + Send + Sync,
{
    /// The scheme handle is shared across buckets: all lists of one map use
    /// the same per-thread state.
    type Handle = L::Handle;

    fn new() -> Self {
        HashMap::new()
    }

    fn handle(&self) -> L::Handle {
        self.buckets[0].handle()
    }

    fn get(&self, handle: &mut L::Handle, key: &K) -> Option<V> {
        self.bucket(key).get(handle, key)
    }

    fn insert(&self, handle: &mut L::Handle, key: K, value: V) -> bool {
        let bucket = self.bucket(&key);
        bucket.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut L::Handle, key: &K) -> Option<V> {
        self.bucket(key).remove(handle, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarded::{HHSList, HMList};
    use crate::test_utils;

    type EbrMap = HashMap<u64, u64, HHSList<u64, u64, ebr::Ebr>>;
    type PebrMap = HashMap<u64, u64, HHSList<u64, u64, pebr::Pebr>>;
    type NrMap = HashMap<u64, u64, HMList<u64, u64, nr::Nr>>;

    #[test]
    fn sequential_semantics() {
        test_utils::check_sequential::<EbrMap>();
        test_utils::check_sequential::<NrMap>();
    }

    #[test]
    fn concurrent_stress() {
        test_utils::check_concurrent::<EbrMap>(8, 512);
        test_utils::check_concurrent::<PebrMap>(8, 512);
    }

    #[test]
    fn striped() {
        test_utils::check_striped::<EbrMap>(4, 128);
    }

    #[test]
    fn small_bucket_count_forces_collisions() {
        let m: HashMap<u64, u64, HHSList<u64, u64, ebr::Ebr>> = HashMap::with_buckets(2);
        let mut h = ConcurrentMap::handle(&m);
        for k in 0..100 {
            assert!(ConcurrentMap::insert(&m, &mut h, k, k * 2));
        }
        for k in 0..100 {
            assert_eq!(ConcurrentMap::get(&m, &mut h, &k), Some(k * 2));
        }
        for k in (0..100).step_by(2) {
            assert_eq!(ConcurrentMap::remove(&m, &mut h, &k), Some(k * 2));
        }
        for k in 0..100 {
            let expected = if k % 2 == 0 { None } else { Some(k * 2) };
            assert_eq!(ConcurrentMap::get(&m, &mut h, &k), expected);
        }
    }
}
