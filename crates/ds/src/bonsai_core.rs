//! The persistent weight-balanced tree core of the Bonsai tree (Clements
//! et al., ASPLOS 2012; non-blocking variant as benchmarked by the paper).
//!
//! Every update **path-copies**: it builds a new version of the root-to-key
//! path (rebalancing with Adams-style rotations), shares every untouched
//! subtree, and publishes the new root with a single CAS. The scheme
//! flavors differ only in how dereferences are protected and how replaced
//! nodes are retired, so the version-building machinery lives here once,
//! parameterized by a [`Protector`]:
//!
//! * guarded schemes (NR/EBR/PEBR): protection is vacuous;
//! * HP: announce + re-validate that the root has not changed (any change
//!   may have retired path nodes — the paper's "validate wrt the root");
//! * HP++: announce + check the *source* node is not invalidated
//!   (published Bonsai links are immutable, so no link re-read is needed).
//!
//! The [`Builder`] records two sets during a build: `fresh` (nodes
//! allocated for the new version — freed wholesale if the root CAS loses)
//! and `replaced` (old nodes whose contents were copied — garbage once the
//! CAS wins).

use std::sync::atomic::Ordering::Relaxed;

use smr_common::{Atomic, Shared};

/// Weight-balance factor (Adams' delta).
const DELTA: usize = 3;
/// Single-vs-double rotation ratio (Adams' ratio).
const RATIO: usize = 2;

/// An (immutable once published) Bonsai node.
pub struct Node<K, V> {
    /// Left child. Atomic only so HP++ invalidation can tag it; the
    /// pointer part never changes after publication.
    pub left: Atomic<Node<K, V>>,
    /// Right child (same discipline as `left`).
    pub right: Atomic<Node<K, V>>,
    /// Subtree size (for weight balancing).
    pub size: usize,
    /// Key.
    pub key: K,
    /// Value.
    pub value: V,
}

/// Size of a possibly-null subtree. The caller must have protected `t`.
pub fn size_of<K, V>(t: Shared<Node<K, V>>) -> usize {
    if t.is_null() {
        0
    } else {
        unsafe { t.deref() }.size
    }
}

/// The protection failed; the whole operation must restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restart;

/// Per-dereference protection hook.
pub trait Protector<K, V> {
    /// Makes `node` safe to dereference. `src` is the (already protected)
    /// node whose field `node` was read from, or null when `node` was read
    /// from the root pointer. `Err(Restart)` aborts the operation.
    fn protect(&mut self, node: Shared<Node<K, V>>, src: Shared<Node<K, V>>)
        -> Result<(), Restart>;
}

/// The guarded-scheme protector: critical sections protect everything.
#[cfg_attr(not(test), allow(dead_code))]
pub struct NoProtect;

impl<K, V> Protector<K, V> for NoProtect {
    fn protect(
        &mut self,
        _node: Shared<Node<K, V>>,
        _src: Shared<Node<K, V>>,
    ) -> Result<(), Restart> {
        Ok(())
    }
}

/// Tracks allocations and replacements during one version build.
pub struct Builder<K, V> {
    /// Nodes allocated for the new version.
    pub fresh: Vec<Shared<Node<K, V>>>,
    /// Old nodes whose contents were copied into the new version.
    pub replaced: Vec<Shared<Node<K, V>>>,
}

impl<K, V> Default for Builder<K, V> {
    fn default() -> Self {
        Self {
            fresh: Vec::new(),
            replaced: Vec::new(),
        }
    }
}

type Parts<K, V> = (Shared<Node<K, V>>, K, V, Shared<Node<K, V>>);
/// `remove`'s result: the rebuilt subtree root and the removed value.
type Removed<K, V> = Option<(Shared<Node<K, V>>, V)>;
/// An edge extraction: the rebuilt subtree plus the extracted key/value.
type Extracted<K, V> = (Shared<Node<K, V>>, K, V);

impl<K: Clone + Ord, V: Clone> Builder<K, V> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn mk(
        &mut self,
        left: Shared<Node<K, V>>,
        key: K,
        value: V,
        right: Shared<Node<K, V>>,
    ) -> Shared<Node<K, V>> {
        let node = Shared::from_owned(Node {
            left: Atomic::from(left),
            right: Atomic::from(right),
            size: 1 + size_of(left) + size_of(right),
            key,
            value,
        });
        self.fresh.push(node);
        node
    }

    /// Reads out a protected node's fields, protecting both children.
    fn read_parts<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
    ) -> Result<Parts<K, V>, Restart> {
        let node = unsafe { t.deref() };
        let l = node.left.load(Relaxed).with_tag(0);
        let r = node.right.load(Relaxed).with_tag(0);
        if !l.is_null() {
            p.protect(l, t)?;
        }
        if !r.is_null() {
            p.protect(r, t)?;
        }
        Ok((l, node.key.clone(), node.value.clone(), r))
    }

    /// Takes a node apart for restructuring. A *fresh* node is simply
    /// deallocated (it was never published); an *old* node is recorded as
    /// replaced.
    fn destructure<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
    ) -> Result<Parts<K, V>, Restart> {
        let parts = self.read_parts(p, t)?;
        if let Some(pos) = self.fresh.iter().position(|f| *f == t) {
            self.fresh.swap_remove(pos);
            unsafe { t.drop_owned() };
        } else {
            self.replaced.push(t);
        }
        Ok(parts)
    }

    /// Records `t` as copied-and-replaced and returns its fields.
    fn replace<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
    ) -> Result<Parts<K, V>, Restart> {
        let parts = self.read_parts(p, t)?;
        self.replaced.push(t);
        Ok(parts)
    }

    /// Adams' join: rebuilds a node from parts, rotating if one side became
    /// too heavy. `l`/`r` are protected (fresh or shared-old) subtrees.
    fn balance<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        l: Shared<Node<K, V>>,
        key: K,
        value: V,
        r: Shared<Node<K, V>>,
    ) -> Result<Shared<Node<K, V>>, Restart> {
        let (ls, rs) = (size_of(l), size_of(r));
        if ls + rs <= 1 {
            return Ok(self.mk(l, key, value, r));
        }
        if rs > DELTA * ls {
            // Right too heavy.
            let (rl, rk, rv, rr) = self.destructure(p, r)?;
            if size_of(rl) < RATIO * size_of(rr) {
                // Single left rotation.
                let inner = self.balance(p, l, key, value, rl)?;
                return Ok(self.mk(inner, rk, rv, rr));
            }
            // Double rotation.
            let (rll, rlk, rlv, rlr) = self.destructure(p, rl)?;
            let a = self.balance(p, l, key, value, rll)?;
            let b = self.balance(p, rlr, rk, rv, rr)?;
            return Ok(self.mk(a, rlk, rlv, b));
        }
        if ls > DELTA * rs {
            // Left too heavy (mirror image).
            let (ll, lk, lv, lr) = self.destructure(p, l)?;
            if size_of(lr) < RATIO * size_of(ll) {
                let inner = self.balance(p, lr, key, value, r)?;
                return Ok(self.mk(ll, lk, lv, inner));
            }
            let (lrl, lrk, lrv, lrr) = self.destructure(p, lr)?;
            let a = self.balance(p, ll, lk, lv, lrl)?;
            let b = self.balance(p, lrr, key, value, r)?;
            return Ok(self.mk(a, lrk, lrv, b));
        }
        Ok(self.mk(l, key, value, r))
    }

    /// Builds the insert version. `Ok(None)` if the key already exists.
    /// `t` must be protected by the caller.
    pub fn insert<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
        key: &K,
        value: &V,
    ) -> Result<Option<Shared<Node<K, V>>>, Restart> {
        if t.is_null() {
            return Ok(Some(self.mk(
                Shared::null(),
                key.clone(),
                value.clone(),
                Shared::null(),
            )));
        }
        let node = unsafe { t.deref() };
        match key.cmp(&node.key) {
            std::cmp::Ordering::Equal => Ok(None),
            std::cmp::Ordering::Less => {
                let (l, k, v, r) = self.replace(p, t)?;
                match self.insert(p, l, key, value)? {
                    Some(l2) => Ok(Some(self.balance(p, l2, k, v, r)?)),
                    None => Ok(None),
                }
            }
            std::cmp::Ordering::Greater => {
                let (l, k, v, r) = self.replace(p, t)?;
                match self.insert(p, r, key, value)? {
                    Some(r2) => Ok(Some(self.balance(p, l, k, v, r2)?)),
                    None => Ok(None),
                }
            }
        }
    }

    /// Builds the remove version. `Ok(None)` if the key is absent.
    /// `t` must be protected by the caller.
    pub fn remove<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
        key: &K,
    ) -> Result<Removed<K, V>, Restart> {
        if t.is_null() {
            return Ok(None);
        }
        let node = unsafe { t.deref() };
        match key.cmp(&node.key) {
            std::cmp::Ordering::Less => {
                let (l, k, v, r) = self.replace(p, t)?;
                match self.remove(p, l, key)? {
                    Some((l2, out)) => Ok(Some((self.balance(p, l2, k, v, r)?, out))),
                    None => {
                        self.replaced.pop(); // undo the speculative replace
                        Ok(None)
                    }
                }
            }
            std::cmp::Ordering::Greater => {
                let (l, k, v, r) = self.replace(p, t)?;
                match self.remove(p, r, key)? {
                    Some((r2, out)) => Ok(Some((self.balance(p, l, k, v, r2)?, out))),
                    None => {
                        self.replaced.pop();
                        Ok(None)
                    }
                }
            }
            std::cmp::Ordering::Equal => {
                let (l, _, v, r) = self.replace(p, t)?;
                Ok(Some((self.glue(p, l, r)?, v)))
            }
        }
    }

    /// Joins two sibling subtrees after their parent's removal.
    fn glue<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        l: Shared<Node<K, V>>,
        r: Shared<Node<K, V>>,
    ) -> Result<Shared<Node<K, V>>, Restart> {
        if l.is_null() {
            return Ok(r);
        }
        if r.is_null() {
            return Ok(l);
        }
        if size_of(l) > size_of(r) {
            let (l2, k, v) = self.extract_max(p, l)?;
            self.balance(p, l2, k, v, r)
        } else {
            let (r2, k, v) = self.extract_min(p, r)?;
            self.balance(p, l, k, v, r2)
        }
    }

    fn extract_min<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
    ) -> Result<Extracted<K, V>, Restart> {
        let (l, k, v, r) = self.destructure(p, t)?;
        if l.is_null() {
            Ok((r, k, v))
        } else {
            let (l2, mk_, mv) = self.extract_min(p, l)?;
            Ok((self.balance(p, l2, k, v, r)?, mk_, mv))
        }
    }

    fn extract_max<P: Protector<K, V>>(
        &mut self,
        p: &mut P,
        t: Shared<Node<K, V>>,
    ) -> Result<Extracted<K, V>, Restart> {
        let (l, k, v, r) = self.destructure(p, t)?;
        if r.is_null() {
            Ok((l, k, v))
        } else {
            let (r2, mk_, mv) = self.extract_max(p, r)?;
            Ok((self.balance(p, l, k, v, r2)?, mk_, mv))
        }
    }

    /// Frees every fresh node (the CAS lost or the build restarted;
    /// nothing was published).
    pub fn abort(self) {
        for f in self.fresh {
            unsafe { f.drop_owned() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants<K: Ord, V>(t: Shared<Node<K, V>>, lo: Option<&K>, hi: Option<&K>) -> usize {
        if t.is_null() {
            return 0;
        }
        let n = unsafe { t.deref() };
        if let Some(lo) = lo {
            assert!(*lo < n.key, "BST order violated");
        }
        if let Some(hi) = hi {
            assert!(n.key < *hi, "BST order violated");
        }
        let l = n.left.load(Relaxed).with_tag(0);
        let r = n.right.load(Relaxed).with_tag(0);
        let ls = check_invariants(l, lo, Some(&n.key));
        let rs = check_invariants(r, Some(&n.key), hi);
        assert_eq!(n.size, 1 + ls + rs, "size field wrong");
        if ls + rs > 1 {
            assert!(ls <= DELTA * rs + 1, "left too heavy: {ls} vs {rs}");
            assert!(rs <= DELTA * ls + 1, "right too heavy: {ls} vs {rs}");
        }
        1 + ls + rs
    }

    fn free_all<K, V>(t: Shared<Node<K, V>>) {
        if t.is_null() {
            return;
        }
        let node = unsafe { Box::from_raw(t.as_raw()) };
        free_all(node.left.load(Relaxed).with_tag(0));
        free_all(node.right.load(Relaxed).with_tag(0));
    }

    #[test]
    fn insert_remove_roundtrip_stays_balanced() {
        let mut root: Shared<Node<u64, u64>> = Shared::null();
        let mut garbage: Vec<Shared<Node<u64, u64>>> = Vec::new();

        for i in 0..256u64 {
            let key = (i * 167) % 256;
            let mut b = Builder::new();
            let new_root = b
                .insert(&mut NoProtect, root, &key, &(key * 10))
                .unwrap()
                .expect("fresh key");
            garbage.extend(b.replaced);
            root = new_root;
            check_invariants(root, None, None);
        }
        assert_eq!(size_of(root), 256);

        for key in (1..256u64).step_by(2) {
            let mut b = Builder::new();
            let (new_root, v) = b.remove(&mut NoProtect, root, &key).unwrap().expect("present");
            assert_eq!(v, key * 10);
            garbage.extend(b.replaced);
            root = new_root;
            check_invariants(root, None, None);
        }
        assert_eq!(size_of(root), 128);

        let mut b = Builder::new();
        assert!(b.remove(&mut NoProtect, root, &1).unwrap().is_none());
        b.abort();

        for g in garbage {
            unsafe { g.drop_owned() };
        }
        free_all(root);
    }

    #[test]
    fn duplicate_insert_builds_nothing_permanent() {
        let mut b = Builder::new();
        let root = b
            .insert(&mut NoProtect, Shared::null(), &5u64, &50u64)
            .unwrap()
            .unwrap();
        assert_eq!(b.fresh.len(), 1);

        let mut b2 = Builder::<u64, u64>::new();
        assert!(b2.insert(&mut NoProtect, root, &5, &50).unwrap().is_none());
        b2.abort();
        unsafe { root.drop_owned() };
    }

    #[test]
    fn restarting_protector_aborts_cleanly() {
        struct FailAfter(usize);
        impl Protector<u64, u64> for FailAfter {
            fn protect(
                &mut self,
                _n: Shared<Node<u64, u64>>,
                _s: Shared<Node<u64, u64>>,
            ) -> Result<(), Restart> {
                if self.0 == 0 {
                    return Err(Restart);
                }
                self.0 -= 1;
                Ok(())
            }
        }

        // Build a small tree first.
        let mut root: Shared<Node<u64, u64>> = Shared::null();
        for key in 0..32u64 {
            let mut b = Builder::new();
            root = b.insert(&mut NoProtect, root, &key, &key).unwrap().unwrap();
            for g in b.replaced {
                unsafe { g.drop_owned() };
            }
        }
        // Now fail protection partway through an insert; abort must free
        // all fresh nodes (no leak, no double free — exercised under the
        // test allocator by simply running).
        let mut b = Builder::new();
        let res = b.insert(&mut FailAfter(3), root, &100, &100);
        assert_eq!(res, Err(Restart));
        b.abort();
        free_all(root);
    }
}
