//! [`ConcurrentMap`] adapters for the stack/queue "bags".
//!
//! The bench workload engine drives everything through the
//! [`ConcurrentMap`] interface. Stacks and queues are *bags*: they hold
//! values, not key→value bindings. The adapter maps the operation mix onto
//! bag operations — `insert` adds the key as a value, `remove` takes an
//! arbitrary element (ignoring the key), and `get` takes one element and
//! immediately puts it back, so read-heavy mixes keep the bag populated
//! while still exercising the contended ends.
//!
//! Keys drawn by the sampler are uninterpreted payload here; contention is
//! structural (every operation hits the head/tail words), which is exactly
//! what the elimination and optimistic variants are designed to relieve.

use smr_common::{ConcurrentMap, GuardedScheme};

use crate::guarded;
use crate::hp as dshp;
use crate::hpp;

/// A multiset of values with contended endpoints: stacks and queues.
pub trait ConcurrentBag<T>: Sized {
    /// Per-thread operation state.
    type Handle;

    /// Creates an empty bag.
    fn new() -> Self;

    /// Creates a per-thread handle.
    fn handle(&self) -> Self::Handle;

    /// Adds a value to the bag.
    fn add(&self, handle: &mut Self::Handle, value: T);

    /// Takes some value out of the bag (LIFO/FIFO order per structure).
    fn take(&self, handle: &mut Self::Handle) -> Option<T>;
}

impl<T: Send> ConcurrentBag<T> for dshp::TreiberStack<T> {
    type Handle = dshp::StackHandle;

    fn new() -> Self {
        dshp::TreiberStack::new()
    }

    fn handle(&self) -> dshp::StackHandle {
        dshp::TreiberStack::<T>::handle(self)
    }

    fn add(&self, _handle: &mut dshp::StackHandle, value: T) {
        self.push(value);
    }

    fn take(&self, handle: &mut dshp::StackHandle) -> Option<T> {
        self.pop(handle)
    }
}

impl<T: Send> ConcurrentBag<T> for dshp::ElimStack<T> {
    type Handle = dshp::StackHandle;

    fn new() -> Self {
        dshp::ElimStack::new()
    }

    fn handle(&self) -> dshp::StackHandle {
        dshp::ElimStack::<T>::handle(self)
    }

    fn add(&self, _handle: &mut dshp::StackHandle, value: T) {
        self.push(value);
    }

    fn take(&self, handle: &mut dshp::StackHandle) -> Option<T> {
        self.pop(handle)
    }
}

impl<T: Send> ConcurrentBag<T> for hpp::TreiberStack<T> {
    type Handle = hpp::StackHandle;

    fn new() -> Self {
        hpp::TreiberStack::new()
    }

    fn handle(&self) -> hpp::StackHandle {
        hpp::TreiberStack::<T>::handle(self)
    }

    fn add(&self, _handle: &mut hpp::StackHandle, value: T) {
        self.push(value);
    }

    fn take(&self, handle: &mut hpp::StackHandle) -> Option<T> {
        self.pop(handle)
    }
}

impl<T: Send> ConcurrentBag<T> for hpp::ElimStack<T> {
    type Handle = hpp::StackHandle;

    fn new() -> Self {
        hpp::ElimStack::new()
    }

    fn handle(&self) -> hpp::StackHandle {
        hpp::ElimStack::<T>::handle(self)
    }

    fn add(&self, _handle: &mut hpp::StackHandle, value: T) {
        self.push(value);
    }

    fn take(&self, handle: &mut hpp::StackHandle) -> Option<T> {
        self.pop(handle)
    }
}

impl<T: Send> ConcurrentBag<T> for dshp::MSQueue<T> {
    type Handle = dshp::QueueHandle;

    fn new() -> Self {
        dshp::MSQueue::new()
    }

    fn handle(&self) -> dshp::QueueHandle {
        dshp::QueueHandle::new()
    }

    fn add(&self, handle: &mut dshp::QueueHandle, value: T) {
        self.enqueue(handle, value);
    }

    fn take(&self, handle: &mut dshp::QueueHandle) -> Option<T> {
        self.dequeue(handle)
    }
}

impl<T: Send, S: GuardedScheme> ConcurrentBag<T> for guarded::MSQueue<T, S> {
    type Handle = S::Handle;

    fn new() -> Self {
        guarded::MSQueue::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn add(&self, handle: &mut S::Handle, value: T) {
        self.enqueue(handle, value);
    }

    fn take(&self, handle: &mut S::Handle) -> Option<T> {
        self.dequeue(handle)
    }
}

impl<T: Send, S: GuardedScheme> ConcurrentBag<T> for guarded::OptQueue<T, S> {
    type Handle = S::Handle;

    fn new() -> Self {
        guarded::OptQueue::new()
    }

    fn handle(&self) -> S::Handle {
        S::handle()
    }

    fn add(&self, handle: &mut S::Handle, value: T) {
        self.enqueue(handle, value);
    }

    fn take(&self, handle: &mut S::Handle) -> Option<T> {
        self.dequeue(handle)
    }
}

/// Presents a [`ConcurrentBag`] as a `ConcurrentMap<u64, u64>` so the bench
/// runner can drive it unchanged.
pub struct BagMap<B> {
    bag: B,
}

unsafe impl<B: Send> Send for BagMap<B> {}
unsafe impl<B: Sync> Sync for BagMap<B> {}

impl<B: ConcurrentBag<u64>> ConcurrentMap<u64, u64> for BagMap<B> {
    type Handle = B::Handle;

    fn new() -> Self {
        Self { bag: B::new() }
    }

    fn handle(&self) -> B::Handle {
        self.bag.handle()
    }

    fn get(&self, handle: &mut B::Handle, _key: &u64) -> Option<u64> {
        // Take-and-put-back: a read op still collides on the hot ends but
        // leaves the population unchanged.
        let v = self.bag.take(handle)?;
        self.bag.add(handle, v);
        Some(v)
    }

    fn insert(&self, handle: &mut B::Handle, key: u64, _value: u64) -> bool {
        self.bag.add(handle, key);
        true
    }

    fn remove(&self, handle: &mut B::Handle, _key: &u64) -> Option<u64> {
        self.bag.take(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<B: ConcurrentBag<u64>>() {
        let m = BagMap::<B>::new();
        let mut h = m.handle();
        assert!(m.insert(&mut h, 7, 7));
        assert!(m.insert(&mut h, 9, 9));
        // get keeps the population intact.
        assert!(m.get(&mut h, &0).is_some());
        let a = m.remove(&mut h, &0).expect("two elements in");
        let b = m.remove(&mut h, &0).expect("one element left");
        assert_eq!(a + b, 16);
        assert_eq!(m.remove(&mut h, &0), None);
        assert_eq!(m.get(&mut h, &0), None);
    }

    #[test]
    fn map_adapter_over_every_bag() {
        exercise::<dshp::TreiberStack<u64>>();
        exercise::<dshp::ElimStack<u64>>();
        exercise::<hpp::TreiberStack<u64>>();
        exercise::<hpp::ElimStack<u64>>();
        exercise::<dshp::MSQueue<u64>>();
        exercise::<guarded::MSQueue<u64, ebr::Ebr>>();
        exercise::<guarded::OptQueue<u64, ebr::Ebr>>();
        exercise::<guarded::MSQueue<u64, nr::Nr>>();
        exercise::<guarded::OptQueue<u64, pebr::Pebr>>();
    }
}
