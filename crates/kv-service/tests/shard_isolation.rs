//! Shard isolation under injected faults: the service-level payoff of
//! per-shard reclamation domains.
//!
//! * Stall one shard's HP++ collector mid-reclaim → sibling shards'
//!   watchdog verdicts stay Healthy with peak garbage inside the derived
//!   `k·H + threshold` bound, and everything drains exactly on release.
//! * The EBR A/B: a wedged pin on the **shared** default collector spreads
//!   unbounded growth to sibling shards (GrowingUnbounded), while
//!   per-shard collectors confine the same stall to the wedged shard.
//! * A worker panic retires its ring (queued commands fail, nothing
//!   hangs) and the scheme teardown + `drain_orphans` balance the global
//!   garbage counters exactly — the PR-4 teardown guarantee at service
//!   scope.
//!
//! Requires `--features fault-injection`. Each test holds an
//! [`smr_common::fault::InstalledPlan`], which serializes tests on the
//! process-wide plan lock.
#![cfg(feature = "fault-injection")]

use std::time::{Duration, Instant};

use kv_service::{
    Command, EbrSharedStore, EbrStore, HppStore, KvConfig, KvError, KvService, ShardStore,
};
use smr_common::counters;
use smr_common::fault::{self, FaultAction};
use smr_common::watchdog::{GarbageWatchdog, WatchdogStatus};

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

fn cfg(shards: usize, batch: usize, ring_depth: usize) -> KvConfig {
    KvConfig {
        shards,
        batch,
        ring_depth,
        buckets: 32,
        ..KvConfig::new()
    }
}

/// First `n` keys routed to `shard` under the service's key mixer.
fn keys_for<S: ShardStore>(svc: &KvService<S>, shard: usize, n: usize) -> Vec<u64> {
    (0u64..).filter(|&k| svc.shard_of(k) == shard).take(n).collect()
}

/// Insert+remove churn on one key set through one-shot calls.
fn churn<S: ShardStore>(client: &mut kv_service::Client<S>, keys: &[u64], pairs: usize) {
    for i in 0..pairs {
        let k = keys[i % keys.len()];
        client.insert(k, k).unwrap();
        client.remove(k).unwrap();
    }
}

#[test]
fn stalled_hpp_collector_leaves_sibling_shards_healthy() {
    let before = counters::garbage_now();
    let svc = KvService::<HppStore>::start(cfg(3, 16, 256));
    let shard0_keys = keys_for(&svc, 0, 64);

    // Stall shard 0's worker inside its *own domain's* reclaim (the
    // epoched-fence revoke step) on the first reclaim anywhere — which is
    // shard 0's, because only shard 0 churns until the stall lands.
    let _plan = fault::plan()
        .at("hpp::reclaim::before_revoke", 1, FaultAction::Stall)
        .install();

    // 150 remove-churn pairs: the 128th unlink triggers the reclaim that
    // hits the stall. Pipelined fire-and-forget — replies queued behind the
    // stall are collected after release.
    let mut client0 = svc.client();
    for i in 0..150 {
        let k = shard0_keys[i % shard0_keys.len()];
        client0.submit(Command::Put { key: k, value: k }).unwrap();
        client0.submit(Command::Del { key: k }).unwrap();
    }
    wait_for("shard 0 to stall in reclaim", || {
        fault::stalled_count("hpp::reclaim::before_revoke") == 1
    });

    // Shard 0 froze mid-reclaim, but within its own bound.
    let bound = svc.garbage_bound(0).expect("hpp has a derived bound") as usize;
    assert!(
        (svc.shard_stats(0).garbage as usize) <= bound,
        "stalled shard over its bound: {} > {bound}",
        svc.shard_stats(0).garbage
    );

    // Siblings keep serving and reclaiming: their domains never see shard
    // 0's stall. Watchdog fed with (ops progress, sampled garbage) must
    // stay Healthy and peak garbage must respect the derived bound.
    let mut sibling_client = svc.client();
    for shard in [1usize, 2] {
        let keys = keys_for(&svc, shard, 64);
        let mut watchdog = GarbageWatchdog::new(bound, Duration::from_secs(5));
        for round in 0..20 {
            churn(&mut sibling_client, &keys, 25);
            let stats = svc.shard_stats(shard);
            let status = watchdog.observe(stats.ops, stats.garbage as usize);
            assert_eq!(
                status,
                WatchdogStatus::Healthy,
                "sibling shard {shard} unhealthy at round {round}"
            );
        }
        let peak = svc.shard_stats(shard).peak_garbage as usize;
        assert!(peak <= bound, "sibling shard {shard} peak {peak} > bound {bound}");
    }
    assert_eq!(
        fault::stalled_count("hpp::reclaim::before_revoke"),
        1,
        "sibling reclaims must not have queued on the stall point"
    );

    // Release: shard 0 finishes its reclaim, drains the queued commands,
    // and every pipelined reply arrives.
    fault::release("hpp::reclaim::before_revoke");
    let mut replies = 0;
    client0.drain(|i, r| {
        assert!(r.is_ok(), "reply {i} failed after release: {r:?}");
        replies += 1;
    });
    assert_eq!(replies, 300);

    drop(client0);
    drop(sibling_client);
    svc.shutdown();
    assert_eq!(
        counters::garbage_now(),
        before,
        "exact drain after release: every retired node must be freed"
    );
}

#[test]
fn shared_ebr_collector_spreads_stall_to_sibling_shards() {
    let before = counters::garbage_now();
    // Deliberately no isolation: every shard's worker registers with the
    // process-default collector.
    let svc = KvService::<EbrSharedStore>::start(cfg(3, 8, 128));

    // Wedge the first pin after install — shard 0's, since nothing else
    // runs commands yet. The stalled worker has *announced* its epoch, so
    // no one sharing the collector can advance past it.
    let _plan = fault::plan()
        .at("ebr::pin::before_validate", 1, FaultAction::Stall)
        .install();
    let shard0_key = keys_for(&svc, 0, 1)[0];
    let mut client0 = svc.client();
    client0.submit(Command::Get { key: shard0_key }).unwrap();
    wait_for("shard 0 to wedge mid-pin", || {
        fault::stalled_count("ebr::pin::before_validate") == 1
    });

    // Sibling churn now grows garbage without bound: collections adopt and
    // retry but the epoch cannot advance. Reclamation progress (total
    // freed) is the watchdog's token; it freezes while garbage climbs.
    let threshold = ebr::default_collector().collect_threshold();
    let bound = 2 * threshold;
    let keys = keys_for(&svc, 1, 64);
    let mut sibling_client = svc.client();
    let mut watchdog = GarbageWatchdog::new(bound, Duration::from_millis(50));
    let mut status = WatchdogStatus::Healthy;
    for _ in 0..12 {
        churn(&mut sibling_client, &keys, 100);
        status = watchdog.observe(counters::total_freed(), svc.shard_stats(1).garbage as usize);
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        matches!(status, WatchdogStatus::GrowingUnbounded { .. }),
        "shared collector should spread the stall: sibling status {status:?}, \
         garbage {} vs bound {bound}",
        svc.shard_stats(1).garbage
    );

    fault::release("ebr::pin::before_validate");
    client0.drain(|_, r| assert!(r.is_ok()));
    drop(client0);
    drop(sibling_client);
    svc.shutdown();
    // The epoch moves again: everything drains. (≤, not ==: the shared
    // default collector may also free garbage stranded by earlier tests.)
    assert!(
        counters::garbage_now() <= before,
        "shared-collector garbage must drain once the stall clears"
    );
}

#[test]
fn per_shard_ebr_collectors_confine_stall_to_wedged_shard() {
    let before = counters::garbage_now();
    let svc = KvService::<EbrStore>::start(cfg(3, 8, 128));

    let _plan = fault::plan()
        .at("ebr::pin::before_validate", 1, FaultAction::Stall)
        .install();
    let shard0_key = keys_for(&svc, 0, 1)[0];
    let mut client0 = svc.client();
    client0.submit(Command::Get { key: shard0_key }).unwrap();
    wait_for("shard 0 to wedge mid-pin", || {
        fault::stalled_count("ebr::pin::before_validate") == 1
    });

    // Same stall, same churn — but shard 1 owns its collector, so its
    // epoch advances regardless and garbage stays near the collect
    // trigger: reclamation progress never stalls.
    let threshold = svc.with_store(1, |s| s.collect_threshold());
    let bound = 4 * threshold;
    let keys = keys_for(&svc, 1, 64);
    let mut sibling_client = svc.client();
    let mut watchdog = GarbageWatchdog::new(bound, Duration::from_millis(50));
    for round in 0..12 {
        churn(&mut sibling_client, &keys, 100);
        let status =
            watchdog.observe(counters::total_freed(), svc.shard_stats(1).garbage as usize);
        assert_eq!(
            status,
            WatchdogStatus::Healthy,
            "isolated sibling unhealthy at round {round} (garbage {}, bound {bound})",
            svc.shard_stats(1).garbage
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let peak = svc.shard_stats(1).peak_garbage as usize;
    assert!(peak <= bound, "sibling peak {peak} > bound {bound}");

    fault::release("ebr::pin::before_validate");
    client0.drain(|_, r| assert!(r.is_ok()));
    drop(client0);
    drop(sibling_client);
    svc.shutdown();
    assert_eq!(
        counters::garbage_now(),
        before,
        "private collectors drain exactly at shutdown"
    );
}

#[test]
fn worker_panic_drops_queued_commands_and_balances_orphans() {
    let before = counters::garbage_now();
    let _plan = fault::plan()
        .at("kv::worker::batch", 5, FaultAction::Panic)
        .install();
    // Supervision off: this test pins down the PR-7 dead-stays-dead
    // containment semantics that `with_supervision(false)` now preserves.
    let svc = KvService::<HppStore>::start(cfg(1, 4, 64).with_supervision(false));

    // Pipeline churn until the ring rejects us: the worker panics on its
    // 5th batch, its guard retires the ring, and every queued command
    // resolves to `Stopped` instead of hanging a client.
    let mut client = svc.client();
    let mut submitted = 0u32;
    for k in 0..4_000u64 {
        match client.submit(Command::Put { key: k, value: k }) {
            Ok(()) => submitted += 1,
            Err(_) => break,
        }
    }
    assert!(submitted > 0, "nothing was ever queued");
    let (mut ok, mut dropped) = (0u32, 0u32);
    client.drain(|_, r| match r {
        Ok(_) => ok += 1,
        Err(KvError::Stopped) => dropped += 1,
        Err(other) => panic!("unsupervised death must read as Stopped, got {other:?}"),
    });
    assert_eq!(ok + dropped, submitted);
    assert!(dropped > 0, "commands queued behind the panic must fail fast");
    wait_for("ring retirement", || svc.worker_gone(0));

    // The shard is dead but the process is fine: fresh commands fail fast.
    let mut late = svc.client();
    assert_eq!(late.get(1), Err(KvError::Stopped));
    assert_eq!(late.insert(1, 1), Err(KvError::Stopped));

    // The panicking worker's HP++ teardown invalidates + retires its
    // unlinked batches and donates them; shutdown's drain_orphans adopts
    // and frees — the global ledger must balance exactly.
    drop(client);
    drop(late);
    svc.shutdown();
    assert_eq!(
        counters::garbage_now(),
        before,
        "panic teardown must not leak or double-free"
    );
}
