//! Command-ring behavior through the public service API: bounded-queue
//! backpressure (producers park via backoff instead of busy-spinning),
//! per-key batch-drain ordering, and full-ring stress across wraparound.
//!
//! Tests that assert on the global backoff counters serialize on a local
//! lock; the file is its own process, so other test binaries cannot
//! perturb the counters mid-assertion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use kv_service::{Client, Command, HppStore, KvConfig, KvError, KvService, ShardStore};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

fn cfg(shards: usize, batch: usize, ring_depth: usize) -> KvConfig {
    KvConfig {
        shards,
        batch,
        ring_depth,
        buckets: 64,
        ..KvConfig::new()
    }
}

/// A store whose `get` blocks while [`GATE`] is closed — lets a test wedge
/// the single worker and fill the ring behind it without fault injection.
/// If [`PANIC`] is set when the gate opens, the worker dies instead of
/// completing, which is how the retired-ring wakeup test kills a worker
/// with producers parked behind a full ring.
struct GatedStore {
    inner: Mutex<HashMap<u64, u64>>,
}

static GATE: AtomicBool = AtomicBool::new(false);
static PANIC: AtomicBool = AtomicBool::new(false);

impl ShardStore for GatedStore {
    type Handle = ();

    fn new_shard(_buckets: usize, _policy: smr_common::policy::PolicyKind) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn handle(&self) -> Self::Handle {}

    fn get(&self, _h: &mut Self::Handle, key: u64) -> Option<u64> {
        while GATE.load(SeqCst) {
            std::thread::yield_now();
        }
        if PANIC.load(SeqCst) {
            panic!("gated store: injected worker death");
        }
        self.inner.lock().unwrap().get(&key).copied()
    }

    fn insert(&self, _h: &mut Self::Handle, key: u64, value: u64) -> bool {
        use std::collections::hash_map::Entry;
        match self.inner.lock().unwrap().entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(value);
                true
            }
        }
    }

    fn remove(&self, _h: &mut Self::Handle, key: u64) -> Option<u64> {
        self.inner.lock().unwrap().remove(&key)
    }

    fn garbage(_h: &Self::Handle) -> u64 {
        0
    }

    fn garbage_bound(&self) -> Option<u64> {
        None
    }

    fn quiesce(&self, _h: &mut Self::Handle) {}

    fn drain_orphans(&self) {}

    const SCHEME: &'static str = "gated";
}

#[test]
fn full_ring_backpressure_parks_producer_instead_of_busy_spinning() {
    let _serial = serial();
    // One shard, an 8-slot ring, and a gated worker: the worker picks up
    // the first command and blocks inside the store, so everything else
    // queues behind it. The op timeout is raised well past the gated
    // window so backpressure (not a deadline) is what the test observes.
    let svc =
        KvService::<GatedStore>::start(cfg(1, 4, 8).with_op_timeout(Duration::from_secs(60)));
    GATE.store(true, SeqCst);
    let mut client = svc.client();
    client.submit(Command::Get { key: 0 }).unwrap();
    wait_for("worker to pick up the gated command", || {
        svc.shard_stats(0).ops == 0 && client.in_flight() == 1 && {
            // The worker popped the entry once it blocks in the store; give
            // it a moment by checking the ring has space for what follows.
            true
        }
    });
    // Fill the ring to capacity (8 slots; the gated command was popped).
    for k in 1..=8u64 {
        client.submit(Command::Get { key: k }).unwrap();
    }

    // The 9th producer must wait. Its wait must escalate to parking —
    // bounded-queue backpressure, not a spin loop burning the core.
    let (_, _, parks_before) = smr_common::counters::total_backoff();
    let producer = std::thread::spawn(move || {
        let mut c: Client<GatedStore> = client;
        c.submit(Command::Get { key: 99 }).unwrap();
        c
    });
    wait_for("blocked producer to park", || {
        smr_common::counters::total_backoff().2 > parks_before
    });
    assert!(!producer.is_finished(), "producer got in despite a full ring");

    // Open the gate: the worker drains, the parked producer gets its slot,
    // and every queued command completes.
    GATE.store(false, SeqCst);
    let mut client = producer.join().unwrap();
    let mut replies = 0;
    client.drain(|_, r| {
        assert_eq!(r, Ok(None));
        replies += 1;
    });
    assert_eq!(replies, 10);
    let stats = svc.shutdown();
    assert_eq!(stats[0].ops, 10);
}

#[test]
fn retired_ring_wakes_parked_producers() {
    let _serial = serial();
    // Satellite regression: producers parked on a full ring must be woken
    // by the close broadcast when the worker dies — not sit out their op
    // deadline parked on a dead shard. Supervision is off so the death is
    // terminal and the outcome is a prompt `Stopped`.
    let svc = KvService::<GatedStore>::start(
        cfg(1, 4, 4)
            .with_supervision(false)
            .with_op_timeout(Duration::from_secs(60)),
    );
    GATE.store(true, SeqCst);
    PANIC.store(false, SeqCst);
    let mut client = svc.client();
    client.submit(Command::Get { key: 0 }).unwrap();
    wait_for("worker to pick up the gated command", || {
        svc.shard_stats(0).ops == 0 && client.in_flight() == 1
    });
    // Fill the 4-slot ring behind the blocked worker.
    for k in 1..=4u64 {
        client.submit(Command::Get { key: k }).unwrap();
    }
    let (_, _, parks_before) = smr_common::counters::total_backoff();
    let producer = std::thread::spawn({
        let mut c: Client<GatedStore> = svc.client();
        move || {
            let started = Instant::now();
            let result = c.submit(Command::Get { key: 99 });
            (result, started.elapsed())
        }
    });
    wait_for("blocked producer to park", || {
        smr_common::counters::total_backoff().2 > parks_before
    });
    // Kill the worker under the parked producer.
    PANIC.store(true, SeqCst);
    GATE.store(false, SeqCst);
    let (result, waited) = producer.join().unwrap();
    assert_eq!(result, Err(KvError::Stopped));
    assert!(
        waited < Duration::from_secs(30),
        "parked producer sat out {waited:?} on a retired ring"
    );
    // Everything queued behind the dead worker failed fast, too.
    let mut failures = 0;
    client.drain(|_, r| {
        assert_eq!(r, Err(KvError::Stopped));
        failures += 1;
    });
    assert_eq!(failures, 5);
    PANIC.store(false, SeqCst);
    svc.shutdown();
}

#[test]
fn batch_drain_preserves_per_key_program_order() {
    let _serial = serial();
    // Dependent op chains per key, pipelined through tiny rings so batches
    // span wraparounds: each chain's replies must reflect program order —
    // ring FIFO + in-order worker drain is the guarantee under test.
    let svc = KvService::<HppStore>::start(cfg(2, 4, 16));
    let mut client = svc.client();
    let keys: Vec<u64> = (0..40).collect();
    for &k in &keys {
        client.submit(Command::Put { key: k, value: 1 }).unwrap();
        client.submit(Command::Del { key: k }).unwrap();
        client.submit(Command::Put { key: k, value: 2 }).unwrap();
        client.submit(Command::Get { key: k }).unwrap();
    }
    let mut replies = Vec::new();
    client.drain(|_, r| replies.push(r.unwrap()));
    assert_eq!(replies.len(), keys.len() * 4);
    for (i, _) in keys.iter().enumerate() {
        let chain = &replies[i * 4..i * 4 + 4];
        assert_eq!(
            chain,
            &[Some(1), Some(1), Some(2), Some(2)],
            "key {i}: per-key order violated: {chain:?}"
        );
    }
    svc.shutdown();
}

#[test]
fn tiny_ring_survives_concurrent_producers_across_wraparound() {
    let _serial = serial();
    // 4 producers hammering a 4-slot ring: thousands of wraparounds and
    // constant backpressure. Every command must complete exactly once.
    const PRODUCERS: u64 = 4;
    const OPS: u64 = 2_000;
    let svc = KvService::<HppStore>::start(cfg(1, 8, 4));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let mut client = svc.client();
            s.spawn(move || {
                let base = p * OPS;
                for k in base..base + OPS {
                    assert_eq!(client.insert(k, k + 7), Ok(true));
                }
                for k in (base..base + OPS).step_by(2) {
                    assert_eq!(client.remove(k), Ok(Some(k + 7)));
                }
            });
        }
    });
    let mut client = svc.client();
    for k in (1..PRODUCERS * OPS).step_by(2) {
        assert_eq!(client.get(k), Ok(Some(k + 7)), "key {k} lost");
    }
    let stats = svc.shutdown();
    assert_eq!(stats[0].ops, PRODUCERS * OPS + PRODUCERS * OPS / 2 + PRODUCERS * OPS / 2);
    assert!(stats[0].max_batch >= 1);
}
