//! Property test for supervised recovery: randomized crash schedules
//! (N seeded worker deaths spread over M shards) must leave
//!
//! * an **exact orphan balance** — after shutdown, the global garbage
//!   counter sits at exactly `before + Σ settled_garbage` over every
//!   quarantine record: each quarantined domain leaks precisely what its
//!   record says, nothing more, nothing leaks unrecorded;
//! * **monotone generations** — shard `i`'s generation equals the number
//!   of crashes aimed at it, and its records carry generations `0..n` in
//!   order;
//! * **undisturbed siblings** — while a shard is down and respawning, every
//!   other shard stays `worker_alive` with a verdict in
//!   {Unknown, Healthy}.
//!
//! Runs in tier-1 (no fault-injection feature needed): crashes are the
//! deterministic [`KvService::inject_crash`] vector. Cases serialize on a
//! local lock because the balance assertion reads the process-global
//! garbage counter.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use kv_service::{HppStore, KvConfig, KvService, ShardStore};
use proptest::prelude::*;
use smr_common::counters;
use smr_common::policy::Verdict;

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// First `n` keys routed to `shard` under the service's key mixer.
fn keys_for<S: ShardStore>(svc: &KvService<S>, shard: usize, n: usize) -> Vec<u64> {
    (0u64..).filter(|&k| svc.shard_of(k) == shard).take(n).collect()
}

fn run_campaign(shards: usize, crashes: &[usize]) {
    let _serial = serial();
    let before = counters::garbage_now();
    let cfg = KvConfig {
        shards,
        batch: 8,
        ring_depth: 64,
        buckets: 32,
        ..KvConfig::new()
    }
    .with_op_timeout(Duration::from_secs(10))
    .with_retries(4);
    let svc = KvService::<HppStore>::start(cfg);
    let mut client = svc.client();

    let mut expected_gen = vec![0u64; shards];
    for (step, &target) in crashes.iter().enumerate() {
        // Churn on every shard so the domains hold real garbage when the
        // crash lands. Keys are unique per step: recovery is lossy by
        // contract, so nothing from an earlier step is relied upon.
        let base = 1_000 * step as u64;
        for k in 0..64u64 {
            client.insert(base + k, k).unwrap();
            client.remove(base + k).unwrap();
        }

        assert!(svc.inject_crash(target), "crash command not accepted");
        let prev = expected_gen[target];
        wait_for("crashed shard to respawn", || {
            // Siblings must stay serving and unpressured for the whole
            // recovery window, not just at the end of it.
            for (i, h) in svc.health().shards.iter().enumerate() {
                if i != target {
                    assert!(h.worker_alive, "sibling shard {i} died during recovery");
                    assert!(
                        matches!(h.verdict, Verdict::Unknown | Verdict::Healthy),
                        "sibling shard {i} under pressure during recovery: {:?}",
                        h.verdict
                    );
                }
            }
            svc.generation(target).0 > prev
        });
        expected_gen[target] = prev + 1;
        assert_eq!(svc.generation(target).0, prev + 1, "generation must bump by exactly one");

        // The respawned incarnation serves traffic again.
        let probe = keys_for(&svc, target, 1)[0];
        assert_eq!(client.insert(probe, step as u64), Ok(true));
        assert_eq!(client.get(probe), Ok(Some(step as u64)));
        assert_eq!(client.remove(probe), Ok(Some(step as u64)));
    }

    // Audit trail: one record per crash, generations in order, settled
    // garbage within the scheme's published bound.
    let mut total_settled = 0u64;
    for i in 0..shards {
        let records = svc.quarantine_records(i);
        let hits = crashes.iter().filter(|&&t| t == i).count();
        assert_eq!(records.len(), hits, "shard {i}: one quarantine record per crash");
        assert_eq!(svc.generation(i).0, hits as u64);
        for (k, r) in records.iter().enumerate() {
            assert_eq!(r.generation, k as u64, "shard {i}: record generations must be monotone");
            if let Some(bound) = r.bound {
                assert!(
                    r.settled_garbage <= bound,
                    "shard {i} gen {k}: settled {} over published bound {bound}",
                    r.settled_garbage
                );
            }
            total_settled += r.settled_garbage;
        }
    }
    let health = svc.health();
    assert_eq!(health.quarantined_domains() as usize, crashes.len());
    assert_eq!(health.quarantined_garbage(), total_settled);

    drop(client);
    svc.shutdown();
    assert_eq!(
        counters::garbage_now(),
        before + total_settled,
        "orphan balance: quarantined domains leak exactly what their records say"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn seeded_crashes_balance_orphans_and_bump_generations(
        shards in 1usize..4,
        targets in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let crashes: Vec<usize> = targets.into_iter().map(|t| t % shards).collect();
        run_campaign(shards, &crashes);
    }
}
