//! Sharded key-value service over SMR-protected maps.
//!
//! The system-level payoff of the paper's robustness story: N shards, each
//! wrapping an SMR-protected hash map with its **own reclamation domain**
//! (a private [`hp_plus::Domain`] or [`ebr::Collector`] per shard), so
//! garbage pressure and collector stalls never cross shard boundaries. One
//! wedged shard degrades that shard alone — the scheme-level guarantee the
//! fault matrix proves (Table 1) lifted to service scope.
//!
//! Architecture:
//!
//! * **Routing** — keys hash to shards via a SplitMix64 finalizer and a
//!   widening multiply ([`shard_of_key`]); the shard's own map then hashes
//!   into its buckets independently.
//! * **Command rings** — each shard owns one bounded MPSC ring
//!   ([`ring::Ring`], Vyukov-style sequence slots). Producers back off via
//!   [`smr_common::Backoff`] (spin → yield → park) when the ring is full;
//!   there is no unbounded queue anywhere, so the service runs on a fixed
//!   thread pool (one worker per shard) instead of thread-per-client.
//! * **Batched workers** — each shard's worker drains up to
//!   [`KvConfig::batch`] commands per wakeup. Map-level guard state is
//!   acquired once per worker (the handle lives for the shard's lifetime)
//!   and per-batch bookkeeping — stats, garbage sampling, the doorbell
//!   round-trip — amortizes across the batch.
//! * **Stores** — [`store::ShardStore`] plugs schemes through the existing
//!   `GuardedScheme`/`ConcurrentMap` plumbing: HP++ by default
//!   ([`store::HppStore`]), per-shard EBR ([`store::EbrStore`]),
//!   shared-collector EBR ([`store::EbrSharedStore`], deliberately
//!   *without* isolation, as the A/B baseline) and leaking NR
//!   ([`store::NrStore`]).
//!
//! Crash story: a worker that panics closes and drains its ring on the way
//! out (every queued command resolves to [`ShardDown`]), donates its
//! reclamation state through the scheme's own panic-safe teardown, and
//! sibling shards never notice. See `tests/shard_isolation.rs`.

mod ring;
mod service;
mod shard;
pub mod store;

pub use ring::{Command, PushError};
pub use service::{Client, KvService};
pub use shard::ShardStatsSnapshot;
pub use store::{EbrSharedStore, EbrStore, HppStore, HyalineStore, NrStore, ShardStore};

/// Fault points owned by this crate (see `smr_common::fault`).
pub const FAULT_POINTS: &[&str] = &["kv::ring::full", "kv::worker::batch"];

/// A command could not be completed because its shard's worker is gone
/// (panicked or shut down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDown;

impl std::fmt::Display for ShardDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard worker is down")
    }
}

impl std::error::Error for ShardDown {}

/// Service configuration. Defaults come from the host shape; every field
/// has an env override so deployments tune without recompiling.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of shards (workers). Default: available cores, `KV_SHARDS`.
    pub shards: usize,
    /// Max commands a worker drains per wakeup. Default 32, `KV_BATCH`.
    pub batch: usize,
    /// Per-shard command ring capacity, rounded up to a power of two.
    /// Default 1024, `KV_RING`.
    pub ring_depth: usize,
    /// Hash buckets per shard's map. Default `ds::hash_map::DEFAULT_BUCKETS`,
    /// `KV_BUCKETS`.
    pub buckets: usize,
    /// Reclamation-trigger policy installed on every shard's private domain.
    /// Default [`PolicyKind::Capped`] (the legacy trigger, bit-identical),
    /// `KV_POLICY` (`eager`/`capped`/`timed`/`adaptive`).
    pub policy: smr_common::policy::PolicyKind,
}

impl KvConfig {
    /// Built-in defaults for the current host (no env consulted).
    pub fn new() -> Self {
        Self {
            shards: available_cores(),
            batch: 32,
            ring_depth: 1024,
            buckets: ds::hash_map::DEFAULT_BUCKETS,
            policy: smr_common::policy::PolicyKind::Capped,
        }
    }

    /// Defaults with `KV_SHARDS` / `KV_BATCH` / `KV_RING` / `KV_BUCKETS` /
    /// `KV_POLICY` applied. Unparseable or zero values fall back to the
    /// default.
    pub fn from_env() -> Self {
        let mut cfg = Self::new();
        cfg.shards = env_usize("KV_SHARDS").unwrap_or(cfg.shards);
        cfg.batch = env_usize("KV_BATCH").unwrap_or(cfg.batch);
        cfg.ring_depth = env_usize("KV_RING").unwrap_or(cfg.ring_depth);
        cfg.buckets = env_usize("KV_BUCKETS").unwrap_or(cfg.buckets);
        cfg.policy =
            smr_common::policy::PolicyKind::from_env_var("KV_POLICY").unwrap_or(cfg.policy);
        cfg
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style per-shard policy override.
    pub fn with_policy(mut self, policy: smr_common::policy::PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for KvConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Available cores, the default shard count.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn env_usize(name: &str) -> Option<usize> {
    smr_common::env::parse_usize(name).filter(|&n| n > 0)
}

/// SplitMix64 finalizer: decorrelates the shard index from the maps' own
/// bucket hash and from adversarially sequential keys.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a key onto `[0, shards)` — widening multiply on the mixed key, so
/// every shard gets an equal slice of the hash space with no division.
#[inline]
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    ((mix64(key) as u128 * shards as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_in_range_and_balanced() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let mut counts = vec![0u64; shards];
            for key in 0..32_000u64 {
                let s = shard_of_key(key, shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            let expect = 32_000.0 / shards as f64;
            for (i, &c) in counts.iter().enumerate() {
                let skew = (c as f64 - expect).abs() / expect;
                assert!(skew < 0.10, "shard {i}/{shards} skew {skew:.3} ({c} keys)");
            }
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = KvConfig::new();
        assert!(cfg.shards >= 1);
        assert!(cfg.batch >= 1);
        assert!(cfg.ring_depth >= 2);
    }
}
