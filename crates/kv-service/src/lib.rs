//! Sharded key-value service over SMR-protected maps.
//!
//! The system-level payoff of the paper's robustness story: N shards, each
//! wrapping an SMR-protected hash map with its **own reclamation domain**
//! (a private [`hp_plus::Domain`] or [`ebr::Collector`] per shard), so
//! garbage pressure and collector stalls never cross shard boundaries. One
//! wedged shard degrades that shard alone — the scheme-level guarantee the
//! fault matrix proves (Table 1) lifted to service scope.
//!
//! Architecture:
//!
//! * **Routing** — keys hash to shards via a SplitMix64 finalizer and a
//!   widening multiply ([`shard_of_key`]); the shard's own map then hashes
//!   into its buckets independently.
//! * **Command rings** — each shard owns one bounded MPSC ring
//!   ([`ring::Ring`], Vyukov-style sequence slots). Producers back off via
//!   [`smr_common::Backoff`] (spin → yield → park) when the ring is full;
//!   there is no unbounded queue anywhere, so the service runs on a fixed
//!   thread pool (one worker per shard) instead of thread-per-client.
//! * **Batched workers** — each shard's worker drains up to
//!   [`KvConfig::batch`] commands per wakeup. Map-level guard state is
//!   acquired once per worker (the handle lives for the shard's lifetime)
//!   and per-batch bookkeeping — stats, garbage sampling, the doorbell
//!   round-trip — amortizes across the batch.
//! * **Stores** — [`store::ShardStore`] plugs schemes through the existing
//!   `GuardedScheme`/`ConcurrentMap` plumbing: HP++ by default
//!   ([`store::HppStore`]), per-shard EBR ([`store::EbrStore`]),
//!   shared-collector EBR ([`store::EbrSharedStore`], deliberately
//!   *without* isolation, as the A/B baseline) and leaking NR
//!   ([`store::NrStore`]).
//!
//! Crash story: a worker that panics closes and drains its ring on the way
//! out (every queued command resolves to a typed error), donates its
//! reclamation state through the scheme's own panic-safe teardown, and
//! sibling shards never notice. See `tests/shard_isolation.rs`.
//!
//! Recovery story (on by default, [`KvConfig::supervise`]): a
//! [`supervisor`] thread notices the death, **quarantines** the poisoned
//! reclamation domain — leaks it, records its settled garbage against the
//! scheme's published bound — and respawns the worker on a fresh ring +
//! fresh store under a bumped [`Generation`]. Nothing is replayed; clients
//! see [`KvError::RetryAfter`] and drive their own bounded retries under a
//! per-op deadline. See `tests/recovery.rs` and the root `tests/chaos.rs`
//! campaign harness.

mod ring;
mod service;
mod shard;
mod supervisor;
pub mod store;

pub use ring::{Command, PushError};
pub use service::{Client, HealthSnapshot, KvService, ShardHealth};
pub use shard::ShardStatsSnapshot;
pub use store::{EbrSharedStore, EbrStore, HppStore, HyalineStore, NrStore, ShardStore};
pub use supervisor::QuarantineRecord;

/// Fault points owned by this crate (see `smr_common::fault`).
pub const FAULT_POINTS: &[&str] = &[
    "kv::ring::full",
    "kv::worker::batch",
    "kv::quarantine::leak",
    "kv::supervisor::respawn",
];

/// A command could not be completed because its shard's worker is gone
/// (panicked or shut down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDown;

impl std::fmt::Display for ShardDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shard worker is down")
    }
}

impl std::error::Error for ShardDown {}

/// The incarnation number of one shard's worker + store. Starts at 0 and
/// bumps once per supervised respawn. Recovery is lossy by contract — the
/// respawned store is empty and nothing queued on the dead ring is
/// replayed — so the generation is the client's signal that state it wrote
/// before the bump may be gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Generation(pub u64);

impl std::fmt::Display for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gen{}", self.0)
    }
}

/// Why a client operation failed. The three variants split the old
/// catch-all [`ShardDown`] by what the caller should *do*:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The shard's worker died but the service supervises it: a fresh
    /// worker is (being) respawned on the carried generation. Retry the
    /// command; state from before the bump may be lost.
    RetryAfter(Generation),
    /// The service is shutting down (or runs unsupervised and the shard is
    /// permanently dead). Stop sending.
    Stopped,
    /// The per-op deadline ([`KvConfig::op_timeout`]) elapsed before the
    /// command resolved — the shard may be wedged rather than dead.
    DeadlineExceeded,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::RetryAfter(g) => write!(f, "shard restarting ({g}); retry"),
            KvError::Stopped => f.write_str("service stopped"),
            KvError::DeadlineExceeded => f.write_str("operation deadline exceeded"),
        }
    }
}

impl std::error::Error for KvError {}

/// Service configuration. Defaults come from the host shape; every field
/// has an env override so deployments tune without recompiling.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Number of shards (workers). Default: available cores, `KV_SHARDS`.
    pub shards: usize,
    /// Max commands a worker drains per wakeup. Default 32, `KV_BATCH`.
    pub batch: usize,
    /// Per-shard command ring capacity, rounded up to a power of two.
    /// Default 1024, `KV_RING`.
    pub ring_depth: usize,
    /// Hash buckets per shard's map. Default `ds::hash_map::DEFAULT_BUCKETS`,
    /// `KV_BUCKETS`.
    pub buckets: usize,
    /// Reclamation-trigger policy installed on every shard's private domain.
    /// Default [`PolicyKind::Capped`] (the legacy trigger, bit-identical),
    /// `KV_POLICY` (`eager`/`capped`/`timed`/`adaptive`).
    pub policy: smr_common::policy::PolicyKind,
    /// Whether the supervisor respawns dead workers (quarantining their
    /// domain) instead of leaving the shard permanently down. Default true,
    /// `KV_SUPERVISE` (`0`/`false` disables).
    pub supervise: bool,
    /// Per-operation client deadline: the worst case one `get`/`insert`/
    /// `remove` call may block across pushes, waits and retries before
    /// resolving to [`KvError::DeadlineExceeded`]. Default 5 s,
    /// `KV_OP_TIMEOUT_MS`.
    pub op_timeout: std::time::Duration,
    /// Bounded retry budget for one-shot client calls that hit
    /// [`KvError::RetryAfter`] (shard respawning): how many times the call
    /// re-pushes, with `smr_common::Backoff`-jittered spacing, before
    /// surfacing the error. Default 3, `KV_OP_RETRIES` (0 allowed).
    pub retries: u32,
}

impl KvConfig {
    /// Built-in defaults for the current host (no env consulted).
    pub fn new() -> Self {
        Self {
            shards: available_cores(),
            batch: 32,
            ring_depth: 1024,
            buckets: ds::hash_map::DEFAULT_BUCKETS,
            policy: smr_common::policy::PolicyKind::Capped,
            supervise: true,
            op_timeout: std::time::Duration::from_millis(5_000),
            retries: 3,
        }
    }

    /// Defaults with `KV_SHARDS` / `KV_BATCH` / `KV_RING` / `KV_BUCKETS` /
    /// `KV_POLICY` applied. Unparseable or zero values fall back to the
    /// default.
    pub fn from_env() -> Self {
        let mut cfg = Self::new();
        cfg.shards = env_usize("KV_SHARDS").unwrap_or(cfg.shards);
        cfg.batch = env_usize("KV_BATCH").unwrap_or(cfg.batch);
        cfg.ring_depth = env_usize("KV_RING").unwrap_or(cfg.ring_depth);
        cfg.buckets = env_usize("KV_BUCKETS").unwrap_or(cfg.buckets);
        cfg.policy =
            smr_common::policy::PolicyKind::from_env_var("KV_POLICY").unwrap_or(cfg.policy);
        cfg.supervise = smr_common::env::parse_bool("KV_SUPERVISE").unwrap_or(cfg.supervise);
        cfg.op_timeout = smr_common::env::parse_u64("KV_OP_TIMEOUT_MS")
            .filter(|&ms| ms > 0)
            .map(std::time::Duration::from_millis)
            .unwrap_or(cfg.op_timeout);
        cfg.retries = smr_common::env::parse_u32("KV_OP_RETRIES").unwrap_or(cfg.retries);
        cfg
    }

    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style supervision toggle (off = PR-7 containment-only
    /// semantics: a dead shard stays dead and fails fast).
    pub fn with_supervision(mut self, supervise: bool) -> Self {
        self.supervise = supervise;
        self
    }

    /// Builder-style per-op deadline override.
    pub fn with_op_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Builder-style retry-budget override.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Builder-style per-shard policy override.
    pub fn with_policy(mut self, policy: smr_common::policy::PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for KvConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Available cores, the default shard count.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn env_usize(name: &str) -> Option<usize> {
    smr_common::env::parse_usize(name).filter(|&n| n > 0)
}

/// SplitMix64 finalizer: decorrelates the shard index from the maps' own
/// bucket hash and from adversarially sequential keys.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a key onto `[0, shards)` — widening multiply on the mixed key, so
/// every shard gets an equal slice of the hash space with no division.
#[inline]
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    ((mix64(key) as u128 * shards as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_in_range_and_balanced() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let mut counts = vec![0u64; shards];
            for key in 0..32_000u64 {
                let s = shard_of_key(key, shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            let expect = 32_000.0 / shards as f64;
            for (i, &c) in counts.iter().enumerate() {
                let skew = (c as f64 - expect).abs() / expect;
                assert!(skew < 0.10, "shard {i}/{shards} skew {skew:.3} ({c} keys)");
            }
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = KvConfig::new();
        assert!(cfg.shards >= 1);
        assert!(cfg.batch >= 1);
        assert!(cfg.ring_depth >= 2);
    }
}
