//! Shard supervision: detect worker death, quarantine the poisoned
//! reclamation domain, respawn the worker on a fresh ring + store.
//!
//! Why quarantine instead of drain: a worker that died *mid-operation*
//! stopped at an arbitrary point in its scheme's protocol. Its teardown
//! guards already donated everything they safely could, so what remains
//! settled in the domain is exactly the garbage the scheme's published
//! bound says a dead participant may pin (Table 1). Draining would mean
//! re-entering a domain whose invariants we no longer trust after an
//! arbitrary fault; leaking it trades a bounded, *recorded* amount of
//! memory ([`QuarantineRecord::settled_garbage`], checked against
//! [`QuarantineRecord::bound`] by the chaos and recovery tests) for the
//! certainty that recovery never touches poisoned state.
//!
//! Recovery is **lossy by contract**: queued commands on the dead ring
//! already failed fast (PR 7's containment), the respawned store starts
//! empty, and nothing is replayed. The per-shard [`Generation`] counter is
//! bumped after every respawn and carried to clients in
//! [`KvError::RetryAfter`](crate::KvError), so callers can tell "retry
//! against the new incarnation" apart from "the service is gone" — and can
//! invalidate whatever they cached from before the bump.
//!
//! The supervisor is one thread for the whole service. It owns every
//! worker `JoinHandle` (joining a dead worker *before* measuring settled
//! garbage is what makes the count stable: the unwind donates local bags
//! on the way out), is nudged by dying workers through [`SupervisorCtl`],
//! and polls as a backstop. Each per-shard recovery runs under
//! `catch_unwind` so an injected fault in the recovery path itself
//! (`kv::quarantine::leak`, `kv::supervisor::respawn`) leaves the shard
//! down for one tick instead of killing supervision for good.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::shard::{run_worker, Shard};
use crate::store::ShardStore;

/// How often the supervisor re-scans the slots when nobody nudges it. The
/// nudge path makes detection immediate; the poll catches a nudge lost to
/// an aborting process state.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// One quarantined domain: the audit trail recovery leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Generation of the worker that died (the incarnation whose domain
    /// this record describes).
    pub generation: u64,
    /// Blocks left settled in the quarantined domain — leaked, permanently.
    pub settled_garbage: u64,
    /// The scheme's published worst-case garbage bound at quarantine time
    /// (`None` for schemes without a stall-proof bound). The robustness
    /// claim is `settled_garbage <= bound` whenever `bound` is `Some`.
    pub bound: Option<u64>,
}

/// Poison-tolerant mutex lock: supervision must keep working even if some
/// unrelated panic poisoned a lock (a poisoned supervisor would turn one
/// shard fault into service-wide unavailability).
fn lock_mutex<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The stable per-shard identity clients and the service hold: the
/// *current* shard incarnation behind a swap point, plus the counters that
/// survive respawns. `Shard` instances come and go; the slot does not.
pub(crate) struct ShardSlot<S> {
    current: RwLock<Arc<Shard<S>>>,
    generation: AtomicU64,
    /// Set at shutdown; tells both clients (fail with `Stopped`, not
    /// `RetryAfter`) and the supervisor (don't respawn) that the service
    /// is going away.
    closed: AtomicBool,
    respawns: AtomicU64,
    quarantined_garbage: AtomicU64,
    records: Mutex<Vec<QuarantineRecord>>,
}

impl<S: ShardStore> ShardSlot<S> {
    pub(crate) fn new(shard: Arc<Shard<S>>) -> Self {
        Self {
            current: RwLock::new(shard),
            generation: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            respawns: AtomicU64::new(0),
            quarantined_garbage: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    /// The live incarnation. Readers racing a respawn get either the old
    /// (retired, fails fast) or the new shard — both are safe.
    pub(crate) fn current(&self) -> Arc<Shard<S>> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Acquire)
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, SeqCst);
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(SeqCst)
    }

    pub(crate) fn respawns(&self) -> u64 {
        self.respawns.load(Relaxed)
    }

    pub(crate) fn quarantined_garbage(&self) -> u64 {
        self.quarantined_garbage.load(Relaxed)
    }

    pub(crate) fn records(&self) -> Vec<QuarantineRecord> {
        lock_mutex(&self.records).clone()
    }
}

/// Wakeup channel between dying workers (and the service) and the
/// supervisor thread.
pub(crate) struct SupervisorCtl {
    stopping: AtomicBool,
    seq: Mutex<u64>,
    cv: Condvar,
}

impl SupervisorCtl {
    pub(crate) fn new() -> Self {
        Self {
            stopping: AtomicBool::new(false),
            seq: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Wakes the supervisor for an immediate scan. Called from a dying
    /// worker's drop guard, so it must never panic.
    pub(crate) fn nudge(&self) {
        let mut seq = lock_mutex(&self.seq);
        *seq = seq.wrapping_add(1);
        self.cv.notify_all();
    }

    pub(crate) fn stop(&self) {
        self.stopping.store(true, SeqCst);
        self.nudge();
    }

    pub(crate) fn is_stopping(&self) -> bool {
        self.stopping.load(SeqCst)
    }

    /// Sleeps until a nudge newer than `*seen` arrives or the poll
    /// interval elapses.
    fn wait(&self, seen: &mut u64) {
        let mut seq = lock_mutex(&self.seq);
        if *seq == *seen {
            seq = self
                .cv
                .wait_timeout(seq, POLL_INTERVAL)
                .map(|(g, _)| g)
                .unwrap_or_else(|e| e.into_inner().0);
        }
        *seen = *seq;
    }
}

/// Everything a respawn needs to rebuild a shard like `KvService::start`
/// built the original.
pub(crate) struct RespawnConfig {
    pub(crate) batch: usize,
    pub(crate) ring_depth: usize,
    pub(crate) buckets: usize,
    pub(crate) policy: smr_common::policy::PolicyKind,
    pub(crate) supervise: bool,
}

/// The supervisor loop: scan, recover dead shards, sleep; on stop, join
/// every worker (it owns all the handles). With `supervise` off it still
/// runs — it is the joiner of last resort — but never respawns, preserving
/// the PR-7 dead-stays-dead containment semantics.
pub(crate) fn run_supervisor<S: ShardStore>(
    slots: Arc<Vec<Arc<ShardSlot<S>>>>,
    ctl: Arc<SupervisorCtl>,
    mut workers: Vec<Option<JoinHandle<()>>>,
    cfg: RespawnConfig,
) {
    let mut seen = 0u64;
    loop {
        let stopping = ctl.is_stopping();
        if cfg.supervise && !stopping {
            for (i, slot) in slots.iter().enumerate() {
                if slot.is_closed() || !slot.current().ring.is_worker_gone() {
                    continue;
                }
                // Recovery itself can take an injected fault; contain it to
                // this tick and retry at the next scan.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    recover(i, slot, &mut workers[i], &ctl, &cfg)
                }));
            }
        }
        if stopping {
            break;
        }
        ctl.wait(&mut seen);
    }
    for worker in &mut workers {
        if let Some(handle) = worker.take() {
            let _ = handle.join();
        }
    }
}

/// One shard's recovery: join the corpse, quarantine its domain, respawn.
fn recover<S: ShardStore>(
    idx: usize,
    slot: &ShardSlot<S>,
    worker: &mut Option<JoinHandle<()>>,
    ctl: &Arc<SupervisorCtl>,
    cfg: &RespawnConfig,
) {
    // Join first: the dead worker's unwind donates its local garbage on
    // the way out, so the settled count is only stable after the join.
    // (`take` keeps a crash *inside* this function from double-joining on
    // the retry pass.)
    if let Some(handle) = worker.take() {
        let _ = handle.join();
    }
    let dead = slot.current();
    let generation = slot.generation();
    // Quarantine, once per dead generation — a retry pass that already
    // recorded this incarnation (then died at the respawn fault point)
    // must not leak or count it twice.
    let recorded = lock_mutex(&slot.records)
        .last()
        .is_some_and(|r| r.generation == generation);
    if !recorded {
        smr_common::fault_point!("kv::quarantine::leak");
        let settled_garbage = dead.store.settled_garbage();
        let bound = dead.store.garbage_bound();
        lock_mutex(&slot.records).push(QuarantineRecord {
            generation,
            settled_garbage,
            bound,
        });
        slot.quarantined_garbage.fetch_add(settled_garbage, Relaxed);
        smr_common::counters::incr_quarantine(settled_garbage);
        // The quarantine proper: pin the poisoned store (and with it the
        // leaked domain holding the settled blocks) alive forever.
        std::mem::forget(Arc::clone(&dead));
    }
    smr_common::fault_point!("kv::supervisor::respawn");
    let fresh = Arc::new(Shard::new(
        S::new_shard(cfg.buckets, cfg.policy),
        cfg.ring_depth,
    ));
    let handle = {
        let shard = Arc::clone(&fresh);
        let ctl = Arc::clone(ctl);
        let batch = cfg.batch;
        std::thread::Builder::new()
            .name(format!("kv-shard-{idx}-g{}", generation + 1))
            .spawn(move || run_worker(shard, batch, Some(ctl)))
            .expect("spawn respawned shard worker")
    };
    *worker = Some(handle);
    *slot.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&fresh);
    slot.generation.store(generation + 1, Release);
    slot.respawns.fetch_add(1, Relaxed);
    smr_common::counters::incr_shard_respawn();
    // Shutdown may have raced this respawn: it closes the rings it sees,
    // which might have been the old one. Close the fresh ring ourselves so
    // the new worker exits and the final join loop terminates.
    if slot.is_closed() || ctl.is_stopping() {
        fresh.ring.close();
    }
}
