//! Bounded MPSC command ring: the shard's front door.
//!
//! Vyukov-style sequence-stamped slots: each slot carries a `seq` counter
//! that encodes whether it is free for the producer at position `pos`
//! (`seq == pos`), holds a published entry (`seq == pos + 1`), or still
//! belongs to a previous lap. Producers claim positions with a CAS on
//! `tail`; the single consumer (the shard worker) pops in position order,
//! so per-producer FIFO is preserved end to end — the batch-drain ordering
//! guarantee the tests pin down.
//!
//! Backpressure: a full ring makes producers wait in
//! [`smr_common::Backoff`]'s spin → yield → park escalator — bounded
//! memory, no busy-spin, no hidden unbounded queue. Once a producer
//! escalates to parking it parks on the `space` doorbell, which the
//! consumer rings when it frees a slot and `close()` broadcasts — so no
//! producer can stay parked on a retired ring. Pushes optionally carry a
//! deadline so a wedged (alive but stalled) worker cannot block a client
//! past its op budget.
//!
//! Sleep/wake: the worker parks on a condvar when the ring is empty. The
//! `sleeping` flag plus re-check under the doorbell mutex closes the lost
//! wakeup race; a coarse wait timeout is belt and braces only.
//!
//! Crash story: when the worker dies (panic or shutdown), it *retires* the
//! ring — closed + `worker_gone` — after which any client waiting on a
//! response rescues the queue itself: it drains every published entry under
//! `rescue` and fails it with [`ShardDown`]. Nothing ever blocks on a dead
//! shard.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use smr_common::{Backoff, CachePadded};

use crate::ShardDown;

/// One key-value command. `u64 → u64` mirrors the workload engine's key
/// space; the store layer is generic underneath if that ever widens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Read `key`.
    Get { key: u64 },
    /// Insert `key → value`; fails (None reply) if the key exists.
    Put { key: u64, value: u64 },
    /// Remove `key`, replying with the removed value.
    Del { key: u64 },
    /// Chaos vector: the worker panics while "executing" this command (its
    /// reply resolves to the shard-down error through the reply guard).
    /// Used by the supervision tests, the chaos campaigns and the recovery
    /// benchmark to kill a *specific* shard deterministically — never part
    /// of a production workload. `key` only routes it.
    Crash { key: u64 },
}

impl Command {
    /// The key this command routes on.
    pub fn key(&self) -> u64 {
        match *self {
            Command::Get { key }
            | Command::Put { key, .. }
            | Command::Del { key }
            | Command::Crash { key } => key,
        }
    }
}

/// Why a push did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The ring is closed (shutdown or dead worker); the command was never
    /// queued.
    Closed,
    /// The push deadline elapsed while the ring stayed full; the command
    /// was never queued.
    TimedOut,
}

const PENDING: u32 = 0;
const DONE_NONE: u32 = 1;
const DONE_SOME: u32 = 2;
const DROPPED: u32 = 3;

/// A one-shot reply cell shared by the submitting client and the worker.
/// Clients pool and reuse slots across commands ([`reset`](Self::reset)),
/// so the steady state allocates nothing.
#[derive(Debug)]
pub(crate) struct ResponseSlot {
    state: AtomicU32,
    value: AtomicU64,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        Self {
            state: AtomicU32::new(PENDING),
            value: AtomicU64::new(0),
        }
    }

    /// Rearms a pooled slot for the next command. Caller must be the only
    /// side still interested in it (the previous command completed).
    pub(crate) fn reset(&self) {
        self.state.store(PENDING, Relaxed);
    }

    /// Worker side: publish the result.
    pub(crate) fn complete(&self, result: Option<u64>) {
        match result {
            Some(v) => {
                self.value.store(v, Relaxed);
                self.state.store(DONE_SOME, Release);
            }
            None => self.state.store(DONE_NONE, Release),
        }
    }

    /// Marks the command failed if no result was published — the dead
    /// worker / rescue path. Idempotent; never overwrites a real result.
    pub(crate) fn drop_if_pending(&self) {
        let _ = self
            .state
            .compare_exchange(PENDING, DROPPED, AcqRel, Relaxed);
    }

    /// Client side: non-blocking result check.
    pub(crate) fn poll(&self) -> Option<Result<Option<u64>, ShardDown>> {
        match self.state.load(Acquire) {
            PENDING => None,
            DONE_NONE => Some(Ok(None)),
            DONE_SOME => Some(Ok(Some(self.value.load(Relaxed)))),
            _ => Some(Err(ShardDown)),
        }
    }
}

/// Why a response wait ended without a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitError {
    /// The worker died before (or while) executing the command; the slot
    /// is resolved and safe to pool again.
    Down,
    /// The deadline elapsed with the command still pending. The worker may
    /// complete the slot *later*, so the caller must abandon it — never
    /// return it to a reuse pool.
    TimedOut,
}

pub(crate) type Entry = (Command, Arc<ResponseSlot>);

struct Slot {
    seq: AtomicUsize,
    entry: UnsafeCell<MaybeUninit<Entry>>,
}

/// The worker's pillow: where it sleeps when the ring is empty.
struct Doorbell {
    sleeping: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// The producers' pillow: where pushes park once their backoff escalates
/// and the ring stays full. The consumer rings it when it frees a slot
/// (only when `waiters != 0`, so the hot pop path pays one relaxed load)
/// and `close()` broadcasts so nobody stays parked on a dead shard. The
/// bounded wait below is a backstop against the register/park race, not
/// the wake protocol.
struct SpaceBell {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

pub(crate) struct Ring {
    slots: Box<[Slot]>,
    mask: usize,
    /// Producer cursor.
    tail: CachePadded<AtomicUsize>,
    /// Consumer cursor. Atomic only so the rescue path can take over after
    /// the worker dies; a live worker is the sole writer.
    head: CachePadded<AtomicUsize>,
    closed: AtomicBool,
    /// Set (after `closed`) once the worker has exited; enables rescue.
    worker_gone: AtomicBool,
    /// Serializes post-mortem drains between rescuing clients.
    rescue: Mutex<()>,
    doorbell: Doorbell,
    space: SpaceBell,
}

// Entries are moved across threads through the slots; Command and
// Arc<ResponseSlot> are both Send.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                entry: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: cap - 1,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            worker_gone: AtomicBool::new(false),
            rescue: Mutex::new(()),
            doorbell: Doorbell {
                sleeping: AtomicBool::new(false),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            },
            space: SpaceBell {
                waiters: AtomicUsize::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            },
        }
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Acquire)
    }

    pub(crate) fn is_worker_gone(&self) -> bool {
        self.worker_gone.load(Acquire)
    }

    /// Enqueues a command. Blocks (via backoff, escalating to parking on
    /// the space doorbell) while the ring is full; fails only when the
    /// ring is closed.
    #[cfg(test)]
    pub(crate) fn push(&self, cmd: Command, resp: Arc<ResponseSlot>) -> Result<(), PushError> {
        self.push_deadline(cmd, resp, None)
    }

    /// [`push`](Self::push) with an optional deadline: a ring that stays
    /// full past it (wedged worker) fails the push with
    /// [`PushError::TimedOut`] instead of blocking forever. The command was
    /// never queued, so the response slot stays safe to reuse.
    pub(crate) fn push_deadline(
        &self,
        cmd: Command,
        resp: Arc<ResponseSlot>,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), PushError> {
        let mut backoff = Backoff::new();
        loop {
            if self.closed.load(Acquire) {
                return Err(PushError::Closed);
            }
            let pos = self.tail.load(Relaxed);
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Acquire);
            let lag = seq.wrapping_sub(pos) as isize;
            if lag == 0 {
                if self
                    .tail
                    .compare_exchange_weak(pos, pos.wrapping_add(1), Relaxed, Relaxed)
                    .is_ok()
                {
                    unsafe { (*slot.entry.get()).write((cmd, resp)) };
                    slot.seq.store(pos.wrapping_add(1), Release);
                    self.ring_doorbell();
                    return Ok(());
                }
                backoff.cas_failed();
            } else if lag < 0 {
                // Full: a whole lap behind. Wait for the consumer.
                smr_common::fault_point!("kv::ring::full");
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return Err(PushError::TimedOut);
                    }
                }
                if backoff.is_parking() {
                    self.wait_for_space();
                } else {
                    backoff.snooze();
                }
            } else {
                // A producer ahead of us claimed the slot but has not
                // published yet; its publish is imminent.
                std::hint::spin_loop();
            }
        }
    }

    /// Whether the producer-side next slot is still a lap behind (full).
    fn is_full(&self) -> bool {
        let pos = self.tail.load(Relaxed);
        let seq = self.slots[pos & self.mask].seq.load(Acquire);
        (seq.wrapping_sub(pos) as isize) < 0
    }

    /// Producer: park until the consumer frees a slot or the ring closes.
    /// The re-check after registering closes the lost-wakeup race against
    /// `pop`/`close`; the 1 ms timeout is a backstop only.
    fn wait_for_space(&self) {
        // This *is* the park phase of the producer's escalator; account for
        // it like `Backoff::snooze` would so the contention counters (and
        // the backpressure tests reading them) keep seeing parks.
        smr_common::counters::incr_backoff_park();
        self.space.waiters.fetch_add(1, SeqCst);
        {
            let guard = self.space.lock.lock().unwrap();
            if self.is_full() && !self.closed.load(SeqCst) {
                let _ = self
                    .space
                    .cv
                    .wait_timeout(guard, Duration::from_millis(1));
            }
        }
        self.space.waiters.fetch_sub(1, SeqCst);
    }

    /// Consumer side: wake parked producers after freeing a slot. Cheap
    /// when nobody is parked (one relaxed load).
    fn ring_space_bell(&self) {
        if self.space.waiters.load(Relaxed) != 0 {
            let _guard = self.space.lock.lock().unwrap();
            self.space.cv.notify_all();
        }
    }

    /// Dequeues the next published entry. Single consumer: only the shard
    /// worker while it lives, then rescuers serialized by `rescue`.
    pub(crate) fn pop(&self) -> Option<Entry> {
        let pos = self.head.load(Relaxed);
        let slot = &self.slots[pos & self.mask];
        if slot.seq.load(Acquire) != pos.wrapping_add(1) {
            return None;
        }
        let entry = unsafe { (*slot.entry.get()).assume_init_read() };
        // Free the slot for the producer one lap ahead.
        slot.seq
            .store(pos.wrapping_add(self.mask).wrapping_add(1), Release);
        self.head.store(pos.wrapping_add(1), Release);
        self.ring_space_bell();
        Some(entry)
    }

    /// Whether the consumer-side next entry is published.
    fn has_next(&self) -> bool {
        let pos = self.head.load(Relaxed);
        self.slots[pos & self.mask].seq.load(Acquire) == pos.wrapping_add(1)
    }

    /// Worker: sleep until a producer rings the doorbell or the ring
    /// closes. Returns immediately if either is already true.
    pub(crate) fn wait_for_work(&self) {
        self.doorbell.sleeping.store(true, SeqCst);
        if self.has_next() || self.closed.load(SeqCst) {
            self.doorbell.sleeping.store(false, SeqCst);
            return;
        }
        let guard = self.doorbell.lock.lock().unwrap();
        if self.doorbell.sleeping.load(SeqCst) && !self.has_next() && !self.closed.load(SeqCst) {
            // The timeout is a backstop, not the protocol: the sleeping
            // flag + re-check above already closes the lost-wakeup race.
            let _ = self.doorbell.cv.wait_timeout(guard, Duration::from_millis(50));
        }
        self.doorbell.sleeping.store(false, SeqCst);
    }

    fn ring_doorbell(&self) {
        if self.doorbell.sleeping.load(Relaxed) && self.doorbell.sleeping.swap(false, SeqCst) {
            let _guard = self.doorbell.lock.lock().unwrap();
            self.doorbell.cv.notify_all();
        }
    }

    /// Stops accepting new commands, wakes the worker to drain what is
    /// already queued, and broadcasts to producers parked on a full ring so
    /// none of them stays parked on a dead shard.
    pub(crate) fn close(&self) {
        self.closed.store(true, SeqCst);
        {
            let _guard = self.doorbell.lock.lock().unwrap();
            self.doorbell.sleeping.store(false, SeqCst);
            self.doorbell.cv.notify_all();
        }
        let _guard = self.space.lock.lock().unwrap();
        self.space.cv.notify_all();
    }

    /// Worker's last act (normal exit *and* unwind): close, hand the
    /// consumer role to rescuers, and fail whatever is still queued.
    pub(crate) fn retire(&self) {
        self.close();
        self.worker_gone.store(true, SeqCst);
        self.rescue_drain();
    }

    /// Post-mortem drain: pops every published entry and fails it. Only
    /// meaningful once `worker_gone`; callers race benignly via `rescue`.
    pub(crate) fn rescue_drain(&self) {
        let _guard = self.rescue.lock().unwrap();
        while let Some((_, resp)) = self.pop() {
            resp.drop_if_pending();
        }
    }

    /// Client-side wait for a response on `slot`, rescuing the ring if the
    /// worker died underneath us.
    #[cfg(test)]
    pub(crate) fn wait_response(&self, slot: &ResponseSlot) -> Result<Option<u64>, ShardDown> {
        self.wait_response_deadline(slot, None).map_err(|_| ShardDown)
    }

    /// [`wait_response`](Self::wait_response) with an optional deadline. A
    /// [`WaitError::TimedOut`] slot may still be completed by the worker
    /// later — the caller must abandon it, not pool it.
    pub(crate) fn wait_response_deadline(
        &self,
        slot: &ResponseSlot,
        deadline: Option<std::time::Instant>,
    ) -> Result<Option<u64>, WaitError> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(result) = slot.poll() {
                return result.map_err(|ShardDown| WaitError::Down);
            }
            if self.is_worker_gone() {
                // Our entry is published (push returned Ok), so a rescue
                // pass must resolve it — unless the worker died while
                // executing it, in which case its reply guard already
                // marked it dropped.
                self.rescue_drain();
                if let Some(result) = slot.poll() {
                    return result.map_err(|ShardDown| WaitError::Down);
                }
            }
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    return Err(WaitError::TimedOut);
                }
            }
            backoff.snooze();
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Entries may remain if the service was dropped without shutdown.
        while let Some((_, resp)) = self.pop() {
            resp.drop_if_pending();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u64) -> (Command, Arc<ResponseSlot>) {
        (Command::Get { key }, Arc::new(ResponseSlot::new()))
    }

    #[test]
    fn fifo_within_capacity_and_across_wraparound() {
        let ring = Ring::with_capacity(8);
        // Three laps through an 8-slot ring.
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for _ in 0..3 {
            for _ in 0..8 {
                let (c, r) = entry(next_push);
                ring.push(c, r).unwrap();
                next_push += 1;
            }
            while let Some((c, _)) = ring.pop() {
                assert_eq!(c.key(), next_pop);
                next_pop += 1;
            }
        }
        assert_eq!(next_pop, 24);
        assert!(!ring.has_next());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::with_capacity(1000).capacity(), 1024);
        assert_eq!(Ring::with_capacity(1).capacity(), 2);
    }

    #[test]
    fn push_after_close_is_rejected() {
        let ring = Ring::with_capacity(4);
        ring.close();
        let (c, r) = entry(1);
        assert_eq!(ring.push(c, r), Err(PushError::Closed));
    }

    #[test]
    fn retire_fails_queued_commands() {
        let ring = Ring::with_capacity(8);
        let slots: Vec<_> = (0..4)
            .map(|k| {
                let (c, r) = entry(k);
                ring.push(c, r.clone()).unwrap();
                r
            })
            .collect();
        ring.retire();
        for s in &slots {
            assert_eq!(s.poll(), Some(Err(ShardDown)));
        }
        assert_eq!(ring.wait_response(&slots[0]), Err(ShardDown));
    }

    #[test]
    fn push_deadline_times_out_on_full_ring() {
        let ring = Ring::with_capacity(2);
        for k in 0..2 {
            let (c, r) = entry(k);
            ring.push(c, r).unwrap();
        }
        let (c, r) = entry(9);
        let deadline = std::time::Instant::now() + Duration::from_millis(20);
        assert_eq!(
            ring.push_deadline(c, r, Some(deadline)),
            Err(PushError::TimedOut)
        );
        assert!(std::time::Instant::now() >= deadline);
    }

    #[test]
    fn close_wakes_producer_parked_on_full_ring() {
        let ring = Arc::new(Ring::with_capacity(2));
        for k in 0..2 {
            let (c, r) = entry(k);
            ring.push(c, r).unwrap();
        }
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let (c, r) = entry(9);
                ring.push(c, r)
            })
        };
        // Let the producer reach the full branch and escalate to parking.
        std::thread::sleep(Duration::from_millis(20));
        ring.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn wait_response_deadline_times_out_while_pending() {
        let ring = Ring::with_capacity(4);
        let (c, r) = entry(1);
        ring.push(c, Arc::clone(&r)).unwrap();
        // No consumer: the wait must end at the deadline, not hang.
        let deadline = std::time::Instant::now() + Duration::from_millis(20);
        assert_eq!(
            ring.wait_response_deadline(&r, Some(deadline)),
            Err(WaitError::TimedOut)
        );
    }

    #[test]
    fn response_slot_roundtrip_and_reuse() {
        let s = ResponseSlot::new();
        assert_eq!(s.poll(), None);
        s.complete(Some(7));
        assert_eq!(s.poll(), Some(Ok(Some(7))));
        // drop_if_pending never clobbers a real result.
        s.drop_if_pending();
        assert_eq!(s.poll(), Some(Ok(Some(7))));
        s.reset();
        assert_eq!(s.poll(), None);
        s.complete(None);
        assert_eq!(s.poll(), Some(Ok(None)));
    }
}
