//! Per-shard store implementations: an SMR-protected map plus the
//! *private* reclamation domain it retires into.
//!
//! The trait is the seam between the service and the schemes. Everything
//! the shard worker and the fault tests need is expressed here:
//!
//! * `new_shard` builds the map **and** its own domain/collector, so one
//!   shard's garbage is charged to that shard alone;
//! * `garbage` reads the worker handle's local garbage — with exactly one
//!   worker per shard, the handle's count *is* the shard's count;
//! * `garbage_bound` derives the scheme's published worst-case bound
//!   (HP's `k·H + threshold` rule, plus HP++'s deferred-invalidation
//!   slack); `None` means the scheme has no stall-proof bound (EBR);
//! * `drain_orphans` adopts and frees what a dead worker donated.
//!
//! [`EbrSharedStore`] exists to *fail* isolation on purpose: all shards
//! share the process-default collector, so a pin wedged on one shard stops
//! the epoch for all of them. The shard-isolation test runs it as the A/B
//! control for the per-shard [`EbrStore`].

use smr_common::policy::{PolicyConfig, PolicyKind, Verdict};
use smr_common::ConcurrentMap;

/// The per-shard trigger-policy config: `KV_POLICY` (via
/// [`KvConfig::policy`](crate::KvConfig)) picks the kind, while the
/// process-wide `SMR_POLICY_THRESHOLD`/`SMR_POLICY_K`/`SMR_POLICY_TIMEOUT_MS`
/// parameter overrides still apply.
fn shard_policy_config(kind: PolicyKind) -> PolicyConfig {
    let mut cfg = PolicyConfig::from_env();
    cfg.kind = kind;
    cfg
}

/// One shard's map + private reclamation domain.
pub trait ShardStore: Send + Sync + Sized + 'static {
    /// Per-worker scheme state (guard slots, local garbage bags).
    type Handle;

    /// Builds the shard: fresh map, fresh domain. `buckets` sizes the
    /// shard's hash table; `policy` selects the reclamation-trigger policy
    /// installed on the shard's private domain (ignored by stores without
    /// one — NR never reclaims, the shared-EBR control keeps the process
    /// default).
    fn new_shard(buckets: usize, policy: PolicyKind) -> Self;

    /// Registers a worker with this shard's domain.
    fn handle(&self) -> Self::Handle;

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64>;
    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool;
    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64>;

    /// Unreclaimed blocks charged to `handle` (= the shard, single worker).
    fn garbage(handle: &Self::Handle) -> u64;

    /// The scheme's derived worst-case garbage bound for one shard, or
    /// `None` if the scheme cannot bound garbage under a stalled collector.
    fn garbage_bound(&self) -> Option<u64>;

    /// Flushes reclamation as far as the scheme allows (worker exit path).
    fn quiesce(&self, handle: &mut Self::Handle);

    /// Adopts and frees garbage donated by a dead worker.
    fn drain_orphans(&self);

    /// Blocks settled in this store's private domain after its (sole)
    /// worker died and its teardown donated everything — i.e. what leaks
    /// if the domain is quarantined *instead of* drained. Only meaningful
    /// once the dead worker has been joined; stores without a private
    /// domain (NR, the shared-EBR control) report 0, since quarantining
    /// them leaks nothing extra.
    fn settled_garbage(&self) -> u64 {
        0
    }

    /// Feeds a per-shard watchdog verdict to the shard's trigger policy
    /// (`Adaptive` reacts; everything else — including stores without a
    /// private domain — ignores it).
    fn report_verdict(&self, _verdict: Verdict) {}

    /// Scheme tag for stats and bench CSV rows.
    const SCHEME: &'static str;
}

/// HP++ chaining hash map over a private [`hp_plus::Domain`] — the
/// default store: bounded garbage *and* optimistic traversal (the paper's
/// headline combination).
pub struct HppStore {
    domain: &'static hp_plus::Domain,
    map: ds::hpp::HashMap<u64, u64>,
}

impl ShardStore for HppStore {
    type Handle = ds::hpp::Handle;

    fn new_shard(buckets: usize, policy: PolicyKind) -> Self {
        // Shards live for the service's lifetime and domains must outlive
        // every handle they registered; leaking one small Domain per shard
        // is the same idiom the fault tests use.
        let domain: &'static hp_plus::Domain = Box::leak(Box::new(hp_plus::Domain::new()));
        let cfg = shard_policy_config(policy);
        domain.set_unlink_policy(cfg.build(hp_plus::legacy_unlink_trigger()));
        domain.set_retire_policy(cfg.build(hp::legacy_trigger()));
        Self {
            domain,
            map: ds::hpp::hash_map_in(domain, buckets),
        }
    }

    fn handle(&self) -> Self::Handle {
        self.map.handle()
    }

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.get(handle, &key)
    }

    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool {
        self.map.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.remove(handle, &key)
    }

    fn garbage(handle: &Self::Handle) -> u64 {
        handle.garbage_count() as u64
    }

    fn garbage_bound(&self) -> Option<u64> {
        // HP's adaptive trigger is max(threshold, k·H); the bound allows
        // their sum, plus HP++'s deferred-invalidation slack (up to
        // RECLAIM_PERIOD unlinked batches of ≤ 2 nodes), times a 2x
        // in-flight margin — the same derivation as tests/robustness.rs.
        let h_slots = self.domain.hp_domain().slot_capacity() as u64;
        Some(
            2 * (hp::reclaim_k() as u64 * h_slots
                + hp::RECLAIM_THRESHOLD as u64
                + 2 * hp_plus::RECLAIM_PERIOD as u64),
        )
    }

    fn quiesce(&self, handle: &mut Self::Handle) {
        handle.reclaim();
    }

    fn drain_orphans(&self) {
        // A fresh thread's reclaim adopts the domain's orphan lists; its
        // own teardown donates back whatever stays protected (nothing, by
        // the time shutdown calls this).
        let mut thread = self.domain.register();
        thread.reclaim();
    }

    fn report_verdict(&self, verdict: Verdict) {
        self.domain.report_verdict(verdict);
    }

    fn settled_garbage(&self) -> u64 {
        // The dead worker's teardown pushed every unreclaimed block onto
        // the domain's orphan lists; with one worker per shard nothing
        // else holds local garbage, so the orphan count *is* the settled
        // total.
        self.domain.hp_domain().orphan_count() as u64
    }

    const SCHEME: &'static str = "hpp";
}

type GuardedMap<S> = ds::hash_map::HashMap<u64, u64, ds::guarded::HHSList<u64, u64, S>>;

/// EBR map over a **private** [`ebr::Collector`] per shard: a wedged pin
/// stops this shard's epoch only.
pub struct EbrStore {
    collector: &'static ebr::Collector,
    map: GuardedMap<ebr::Ebr>,
}

impl EbrStore {
    /// This shard's collection trigger (`max(floor, k·participants)`);
    /// fault tests derive the expected steady-state garbage bound from it.
    pub fn collect_threshold(&self) -> usize {
        self.collector.collect_threshold()
    }
}

impl ShardStore for EbrStore {
    type Handle = ebr::LocalHandle;

    fn new_shard(buckets: usize, policy: PolicyKind) -> Self {
        let collector: &'static ebr::Collector = Box::leak(Box::new(ebr::Collector::new()));
        collector.set_policy(shard_policy_config(policy).build(ebr::legacy_trigger()));
        Self {
            collector,
            map: ds::hash_map::HashMap::with_buckets(buckets),
        }
    }

    fn handle(&self) -> Self::Handle {
        // Bypasses `GuardedScheme::handle` (which registers with the
        // process default) to register with this shard's collector.
        self.collector.register()
    }

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.get(handle, &key)
    }

    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool {
        self.map.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.remove(handle, &key)
    }

    fn garbage(handle: &Self::Handle) -> u64 {
        handle.local_garbage() as u64
    }

    fn garbage_bound(&self) -> Option<u64> {
        // EBR's garbage is bounded only while the epoch advances; one
        // stalled pin unbounds it (Table 1). No stall-proof bound exists.
        None
    }

    fn quiesce(&self, handle: &mut Self::Handle) {
        // Each flush adopts orphans and attempts an epoch advance; three
        // rounds expire all generation bags when nothing else is pinned.
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    fn drain_orphans(&self) {
        let mut handle = self.collector.register();
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    fn report_verdict(&self, verdict: Verdict) {
        self.collector.report_verdict(verdict);
    }

    fn settled_garbage(&self) -> u64 {
        self.collector.orphan_count() as u64
    }

    const SCHEME: &'static str = "ebr";
}

/// Hyaline map over a **private** [`hyaline::Domain`] per shard:
/// snapshot-free reference-counted batch handover. Unlike EBR there is no
/// epoch to wedge — a batch waits only on the slots that were active at its
/// handover — so the store has a derived stall-proof garbage bound where
/// [`EbrStore`] must report `None`.
pub struct HyalineStore {
    domain: &'static hyaline::Domain,
    map: GuardedMap<hyaline::Hyaline>,
}

impl ShardStore for HyalineStore {
    type Handle = hyaline::LocalHandle;

    fn new_shard(buckets: usize, policy: PolicyKind) -> Self {
        let domain: &'static hyaline::Domain = Box::leak(Box::new(hyaline::Domain::new()));
        domain.set_policy(shard_policy_config(policy).build(hyaline::legacy_trigger()));
        Self {
            domain,
            map: ds::hash_map::HashMap::with_buckets(buckets),
        }
    }

    fn handle(&self) -> Self::Handle {
        // Bypasses `GuardedScheme::handle` (which registers with the
        // process default) to register with this shard's domain.
        self.domain.register()
    }

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.get(handle, &key)
    }

    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool {
        self.map.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.remove(handle, &key)
    }

    fn garbage(handle: &Self::Handle) -> u64 {
        handle.local_garbage() as u64
    }

    fn garbage_bound(&self) -> Option<u64> {
        // One worker per shard: its unhanded batch plus the batches the
        // worker's own critical sections can pin — `hyaline::garbage_bound`
        // derives the cap from the handover trigger, never hard-coded.
        Some(hyaline::garbage_bound(1) as u64)
    }

    fn quiesce(&self, handle: &mut Self::Handle) {
        // Each pinned flush hands the local batch over; the guard drop
        // releases this worker's own reference. Three rounds also adopt
        // whatever orphans other workers donated meanwhile.
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    fn drain_orphans(&self) {
        let mut handle = self.domain.register();
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    fn report_verdict(&self, verdict: Verdict) {
        self.domain.report_verdict(verdict);
    }

    fn settled_garbage(&self) -> u64 {
        self.domain.orphan_count() as u64
    }

    const SCHEME: &'static str = "hyaline";
}

/// EBR map over the **process-wide** default collector: no isolation, on
/// purpose. The A/B control proving why domains must be per shard — one
/// wedged pin here freezes reclamation for every shard.
pub struct EbrSharedStore {
    map: GuardedMap<ebr::Ebr>,
}

impl ShardStore for EbrSharedStore {
    type Handle = ebr::LocalHandle;

    fn new_shard(buckets: usize, _policy: PolicyKind) -> Self {
        // The process-default collector is shared with everything else in
        // the process; a per-shard policy must not latch onto it.
        Self {
            map: ds::hash_map::HashMap::with_buckets(buckets),
        }
    }

    fn handle(&self) -> Self::Handle {
        ebr::default_collector().register()
    }

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.get(handle, &key)
    }

    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool {
        self.map.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.remove(handle, &key)
    }

    fn garbage(handle: &Self::Handle) -> u64 {
        handle.local_garbage() as u64
    }

    fn garbage_bound(&self) -> Option<u64> {
        None
    }

    fn quiesce(&self, handle: &mut Self::Handle) {
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    fn drain_orphans(&self) {
        let mut handle = ebr::default_collector().register();
        for _ in 0..3 {
            handle.pin().flush();
        }
    }

    const SCHEME: &'static str = "ebr-shared";
}

/// No reclamation at all: the leaking upper-bound baseline.
pub struct NrStore {
    map: GuardedMap<nr::Nr>,
}

impl ShardStore for NrStore {
    type Handle = ();

    fn new_shard(buckets: usize, _policy: PolicyKind) -> Self {
        Self {
            map: ds::hash_map::HashMap::with_buckets(buckets),
        }
    }

    fn handle(&self) -> Self::Handle {}

    fn get(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.get(handle, &key)
    }

    fn insert(&self, handle: &mut Self::Handle, key: u64, value: u64) -> bool {
        self.map.insert(handle, key, value)
    }

    fn remove(&self, handle: &mut Self::Handle, key: u64) -> Option<u64> {
        self.map.remove(handle, &key)
    }

    fn garbage(_handle: &Self::Handle) -> u64 {
        0 // NR never frees; "garbage" is simply the leak, tracked globally.
    }

    fn garbage_bound(&self) -> Option<u64> {
        None
    }

    fn quiesce(&self, _handle: &mut Self::Handle) {}

    fn drain_orphans(&self) {}

    const SCHEME: &'static str = "nr";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: ShardStore>() {
        let store = S::new_shard(64, PolicyKind::Capped);
        let mut h = store.handle();
        assert!(store.insert(&mut h, 1, 10));
        assert!(!store.insert(&mut h, 1, 11), "duplicate insert fails");
        assert_eq!(store.get(&mut h, 1), Some(10));
        assert_eq!(store.remove(&mut h, 1), Some(10));
        assert_eq!(store.get(&mut h, 1), None);
        store.quiesce(&mut h);
    }

    #[test]
    fn all_stores_roundtrip() {
        roundtrip::<HppStore>();
        roundtrip::<EbrStore>();
        roundtrip::<EbrSharedStore>();
        roundtrip::<NrStore>();
        roundtrip::<HyalineStore>();
    }

    #[test]
    fn private_domains_do_not_share_garbage() {
        // Churn in shard A must not move shard B's local garbage count.
        let a = HppStore::new_shard(16, PolicyKind::Capped);
        let b = HppStore::new_shard(16, PolicyKind::Capped);
        let mut ha = a.handle();
        let hb = b.handle();
        for k in 0..300u64 {
            a.insert(&mut ha, k, k);
            a.remove(&mut ha, k);
        }
        assert_eq!(HppStore::garbage(&hb), 0, "sibling shard charged for churn");
        let bound = a.garbage_bound().unwrap();
        assert!(
            HppStore::garbage(&ha) <= bound,
            "churning shard over its own bound: {} > {bound}",
            HppStore::garbage(&ha)
        );
    }

    #[test]
    fn private_hyaline_domains_do_not_share_garbage() {
        // Same isolation property for the hyaline store: batches retired by
        // shard A hand over within A's private domain only.
        let a = HyalineStore::new_shard(16, PolicyKind::Capped);
        let b = HyalineStore::new_shard(16, PolicyKind::Capped);
        let mut ha = a.handle();
        let hb = b.handle();
        for k in 0..300u64 {
            a.insert(&mut ha, k, k);
            a.remove(&mut ha, k);
        }
        assert_eq!(
            HyalineStore::garbage(&hb),
            0,
            "sibling shard charged for churn"
        );
        let bound = a.garbage_bound().unwrap();
        assert!(
            HyalineStore::garbage(&ha) <= bound,
            "churning shard over its own bound: {} > {bound}",
            HyalineStore::garbage(&ha)
        );
    }
}
