//! Service lifecycle and the client API.
//!
//! Since the supervision layer, clients and the service never hold a
//! `Shard` directly: they hold [`ShardSlot`]s, the stable per-shard
//! identities whose *current* incarnation the supervisor swaps out on
//! respawn. Clients cache the current incarnation per slot and revalidate
//! with one relaxed generation load per command, so the supervised fast
//! path costs nothing measurable over the PR-7 layout.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smr_common::policy::Verdict;
use smr_common::Backoff;

use crate::ring::{Command, PushError, ResponseSlot, WaitError};
use crate::shard::{run_worker, Shard, ShardStatsSnapshot};
use crate::store::{HppStore, ShardStore};
use crate::supervisor::{
    run_supervisor, QuarantineRecord, RespawnConfig, ShardSlot, SupervisorCtl,
};
use crate::{shard_of_key, Generation, KvConfig, KvError};

/// One shard's row in a [`HealthSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Current incarnation (bumps on every supervised respawn).
    pub generation: Generation,
    /// Whether the current incarnation's worker is running.
    pub worker_alive: bool,
    /// The worker's latest [`GarbageWatchdog`](smr_common::watchdog)
    /// verdict for the current incarnation ([`Verdict::Unknown`] until the
    /// first sample).
    pub verdict: Verdict,
    /// Supervised respawns so far.
    pub respawns: u64,
    /// Reclamation domains quarantined (leaked) by those respawns.
    pub quarantined_domains: u64,
    /// Total settled garbage recorded inside those quarantined domains.
    pub quarantined_garbage: u64,
}

/// Point-in-time service health: what an operator (or the chaos harness)
/// reads to decide whether recovery is keeping up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// One row per shard.
    pub shards: Vec<ShardHealth>,
}

impl HealthSnapshot {
    /// Total quarantined domains across shards.
    pub fn quarantined_domains(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_domains).sum()
    }

    /// Total settled garbage leaked in quarantine across shards.
    pub fn quarantined_garbage(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_garbage).sum()
    }

    /// Whether every shard has a live worker and no watchdog pressure.
    pub fn all_serving(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.worker_alive && !s.verdict.is_pressure())
    }
}

/// The running service: one worker thread per shard plus one supervisor.
///
/// ```
/// let svc = kv_service::KvService::<kv_service::HppStore>::start(
///     kv_service::KvConfig::new().with_shards(2),
/// );
/// let mut client = svc.client();
/// assert_eq!(client.insert(7, 70), Ok(true));
/// assert_eq!(client.get(7), Ok(Some(70)));
/// svc.shutdown();
/// ```
pub struct KvService<S: ShardStore = HppStore> {
    slots: Arc<Vec<Arc<ShardSlot<S>>>>,
    ctl: Arc<SupervisorCtl>,
    supervisor: Option<JoinHandle<()>>,
    cfg: KvConfig,
}

impl<S: ShardStore> KvService<S> {
    /// Builds the shards (each with its private reclamation domain),
    /// spawns one worker per shard and the supervisor thread. The
    /// supervisor runs even with [`KvConfig::supervise`] off — it owns the
    /// worker joins — but then never respawns.
    pub fn start(cfg: KvConfig) -> Self {
        let shard_count = cfg.shards.max(1);
        let ctl = Arc::new(SupervisorCtl::new());
        let slots: Arc<Vec<Arc<ShardSlot<S>>>> = Arc::new(
            (0..shard_count)
                .map(|_| {
                    Arc::new(ShardSlot::new(Arc::new(Shard::new(
                        S::new_shard(cfg.buckets, cfg.policy),
                        cfg.ring_depth,
                    ))))
                })
                .collect(),
        );
        let workers: Vec<Option<JoinHandle<()>>> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let shard = slot.current();
                let batch = cfg.batch.max(1);
                let ctl = Arc::clone(&ctl);
                Some(
                    std::thread::Builder::new()
                        .name(format!("kv-shard-{i}-g0"))
                        .spawn(move || run_worker(shard, batch, Some(ctl)))
                        .expect("spawn shard worker"),
                )
            })
            .collect();
        let supervisor = {
            let slots = Arc::clone(&slots);
            let ctl = Arc::clone(&ctl);
            let respawn = RespawnConfig {
                batch: cfg.batch.max(1),
                ring_depth: cfg.ring_depth,
                buckets: cfg.buckets,
                policy: cfg.policy,
                supervise: cfg.supervise,
            };
            std::thread::Builder::new()
                .name("kv-supervisor".into())
                .spawn(move || run_supervisor(slots, ctl, workers, respawn))
                .expect("spawn kv supervisor")
        };
        Self {
            slots,
            ctl,
            supervisor: Some(supervisor),
            cfg,
        }
    }

    /// A new client handle. Cheap: Arc clones plus an empty slot pool.
    pub fn client(&self) -> Client<S> {
        Client {
            cached: self
                .slots
                .iter()
                .map(|s| (s.generation(), s.current()))
                .collect(),
            slots: Arc::clone(&self.slots),
            supervised: self.cfg.supervise,
            op_timeout: self.cfg.op_timeout,
            retries: self.cfg.retries,
            free: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.slots.len())
    }

    /// Current counters for shard `i`'s live incarnation. Reset on
    /// respawn, like everything else about the incarnation.
    pub fn shard_stats(&self, i: usize) -> ShardStatsSnapshot {
        self.slots[i].current().stats.snapshot()
    }

    /// Counters for every shard.
    pub fn stats(&self) -> Vec<ShardStatsSnapshot> {
        self.slots.iter().map(|s| s.current().stats.snapshot()).collect()
    }

    /// Shard `i`'s derived worst-case garbage bound, if its scheme has one.
    pub fn garbage_bound(&self, i: usize) -> Option<u64> {
        self.slots[i].current().store.garbage_bound()
    }

    /// Whether shard `i`'s *current* worker has exited (normally or by
    /// panic). Flips back to false once the supervisor respawns it.
    pub fn worker_gone(&self, i: usize) -> bool {
        self.slots[i].current().ring.is_worker_gone()
    }

    /// Shard `i`'s current generation (0 until its first respawn).
    pub fn generation(&self, i: usize) -> Generation {
        Generation(self.slots[i].generation())
    }

    /// The quarantine audit trail for shard `i`: one record per respawn.
    pub fn quarantine_records(&self, i: usize) -> Vec<QuarantineRecord> {
        self.slots[i].records()
    }

    /// Per-shard health, one scan.
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            shards: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| {
                    let current = slot.current();
                    ShardHealth {
                        shard: i,
                        generation: Generation(slot.generation()),
                        worker_alive: !current.ring.is_worker_gone(),
                        verdict: current.verdict(),
                        respawns: slot.respawns(),
                        quarantined_domains: slot.records().len() as u64,
                        quarantined_garbage: slot.quarantined_garbage(),
                    }
                })
                .collect(),
        }
    }

    /// Read-only access to shard `i`'s *current* store — fault tests
    /// derive bounds (collect thresholds, slot capacities) from the live
    /// instance.
    pub fn with_store<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        let shard = self.slots[i].current();
        f(&shard.store)
    }

    /// Deterministically kills shard `i`'s current worker by queueing a
    /// [`Command::Crash`] straight onto its ring (bypassing key routing) —
    /// the test / chaos-campaign crash vector. Returns `false` if the ring
    /// was already closed (or stayed full past a 5 s safety deadline).
    pub fn inject_crash(&self, i: usize) -> bool {
        let shard = self.slots[i].current();
        let resp = Arc::new(ResponseSlot::new());
        shard
            .ring
            .push_deadline(
                Command::Crash { key: 0 },
                resp,
                Some(Instant::now() + Duration::from_secs(5)),
            )
            .is_ok()
    }

    /// Graceful stop: mark every slot closed (so clients fail with
    /// [`KvError::Stopped`], not `RetryAfter`), stop the supervisor, close
    /// the rings, join everything, then adopt-and-free what the workers'
    /// teardowns donated. Returns the final per-shard counters.
    pub fn shutdown(mut self) -> Vec<ShardStatsSnapshot> {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        // Order matters: closed flags first (a worker death observed after
        // this is shutdown, not a fault), then stop the supervisor, then
        // close the rings so workers drain out and exit.
        for slot in self.slots.iter() {
            slot.close();
        }
        self.ctl.stop();
        for slot in self.slots.iter() {
            slot.current().ring.close();
        }
        if let Some(supervisor) = self.supervisor.take() {
            // The supervisor joins every worker on its way out.
            let _ = supervisor.join();
        }
        for slot in self.slots.iter() {
            slot.current().store.drain_orphans();
        }
    }
}

impl<S: ShardStore> Drop for KvService<S> {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            self.stop();
        }
    }
}

/// A client handle: routes commands to shards and waits for replies.
///
/// Two modes:
/// * one-shot ([`get`](Self::get) / [`insert`](Self::insert) /
///   [`remove`](Self::remove)) — submit and wait, with the full failure
///   API: per-op deadline ([`KvConfig::op_timeout`]), bounded retries with
///   backoff-jittered spacing across shard respawns;
/// * pipelined ([`submit`](Self::submit) then [`drain`](Self::drain)) —
///   keep many commands in flight and collect replies in submission
///   order. Pipelined replies carry typed errors but are *not* retried:
///   the caller owns the pipeline and decides what to re-issue.
///
/// Reply slots are pooled and reused, so a steady-state client allocates
/// nothing per command. A slot whose command timed out is abandoned, never
/// pooled — the worker may still complete it later.
pub struct Client<S: ShardStore> {
    slots: Arc<Vec<Arc<ShardSlot<S>>>>,
    /// Per-shard cached incarnation, revalidated by one generation load.
    cached: Vec<(u64, Arc<Shard<S>>)>,
    supervised: bool,
    op_timeout: Duration,
    retries: u32,
    free: Vec<Arc<ResponseSlot>>,
    pending: Vec<(usize, Arc<Shard<S>>, Arc<ResponseSlot>)>,
}

impl<S: ShardStore> Client<S> {
    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.slots.len())
    }

    /// Commands submitted and not yet drained.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Shard `i`'s current generation, as this client can observe it.
    pub fn generation(&self, i: usize) -> Generation {
        Generation(self.slots[i].generation())
    }

    /// Per-op deadline override for this client (defaults to the service
    /// config's [`KvConfig::op_timeout`]).
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Retry-budget override for this client (defaults to the service
    /// config's [`KvConfig::retries`]).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    fn take_slot(&mut self) -> Arc<ResponseSlot> {
        let slot = self.free.pop().unwrap_or_else(|| Arc::new(ResponseSlot::new()));
        slot.reset();
        slot
    }

    /// The cached incarnation of shard `idx`, revalidated against the
    /// slot's generation (one relaxed load on the fast path).
    fn current(&mut self, idx: usize) -> Arc<Shard<S>> {
        if self.slots[idx].generation() != self.cached[idx].0 {
            self.refresh(idx);
        }
        Arc::clone(&self.cached[idx].1)
    }

    fn refresh(&mut self, idx: usize) {
        let slot = &self.slots[idx];
        self.cached[idx] = (slot.generation(), slot.current());
    }

    /// The error a down shard maps to for this client.
    fn down_error(&self, idx: usize) -> KvError {
        if !self.supervised || self.slots[idx].is_closed() {
            KvError::Stopped
        } else {
            KvError::RetryAfter(Generation(self.slots[idx].generation()))
        }
    }

    /// Waits (jittered backoff) for shard `idx` to come back up after a
    /// death: either a respawned incarnation accepts commands, the service
    /// closes, or the deadline passes. Returns whether retrying is useful.
    fn await_respawn(&mut self, idx: usize, deadline: Instant) -> bool {
        let mut backoff = Backoff::new();
        loop {
            if self.slots[idx].is_closed() {
                return false;
            }
            self.refresh(idx);
            if !self.cached[idx].1.ring.is_closed() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            backoff.snooze();
        }
    }

    /// Enqueues `cmd` without waiting. Blocks (backoff, bounded by the
    /// per-op deadline) while the target ring is full; rides out shard
    /// respawns within the retry budget. The reply is collected by
    /// [`drain`](Self::drain), in submission order.
    pub fn submit(&mut self, cmd: Command) -> Result<(), KvError> {
        let idx = self.shard_of(cmd.key());
        let deadline = Instant::now() + self.op_timeout;
        let slot = self.take_slot();
        let mut attempts = 0u32;
        loop {
            let shard = self.current(idx);
            match shard.ring.push_deadline(cmd, Arc::clone(&slot), Some(deadline)) {
                Ok(()) => {
                    self.pending.push((idx, shard, slot));
                    return Ok(());
                }
                Err(PushError::TimedOut) => {
                    // Never entered the ring; the slot stays pool-safe.
                    self.free.push(slot);
                    return Err(KvError::DeadlineExceeded);
                }
                Err(PushError::Closed) => {
                    let err = self.down_error(idx);
                    let retryable = matches!(err, KvError::RetryAfter(_));
                    if !retryable || attempts >= self.retries {
                        self.free.push(slot);
                        return Err(err);
                    }
                    attempts += 1;
                    if !self.await_respawn(idx, deadline) {
                        self.free.push(slot);
                        return Err(if self.slots[idx].is_closed() {
                            KvError::Stopped
                        } else {
                            KvError::DeadlineExceeded
                        });
                    }
                }
            }
        }
    }

    /// Waits for every in-flight command, invoking `sink(index, reply)` in
    /// submission order (`index` counts from 0 within this drain). Each
    /// reply waits at most one op-timeout; a timed-out command reports
    /// [`KvError::DeadlineExceeded`] and its slot is abandoned (the worker
    /// may still complete it later). Pipelined errors are *not* retried.
    pub fn drain(&mut self, mut sink: impl FnMut(usize, Result<Option<u64>, KvError>)) {
        let pending = std::mem::take(&mut self.pending);
        for (i, (idx, shard, slot)) in pending.into_iter().enumerate() {
            let deadline = Instant::now() + self.op_timeout;
            match shard.ring.wait_response_deadline(&slot, Some(deadline)) {
                Ok(reply) => {
                    sink(i, Ok(reply));
                    self.free.push(slot);
                }
                Err(WaitError::Down) => {
                    sink(i, Err(self.down_error(idx)));
                    self.free.push(slot);
                }
                Err(WaitError::TimedOut) => {
                    sink(i, Err(KvError::DeadlineExceeded));
                    // Abandoned: completing it later must not corrupt a
                    // pooled reuse.
                }
            }
        }
    }

    fn call(&mut self, cmd: Command) -> Result<Option<u64>, KvError> {
        let idx = self.shard_of(cmd.key());
        let deadline = Instant::now() + self.op_timeout;
        let mut attempts = 0u32;
        loop {
            let shard = self.current(idx);
            let slot = self.take_slot();
            match shard.ring.push_deadline(cmd, Arc::clone(&slot), Some(deadline)) {
                Ok(()) => match shard.ring.wait_response_deadline(&slot, Some(deadline)) {
                    Ok(reply) => {
                        self.free.push(slot);
                        return Ok(reply);
                    }
                    Err(WaitError::TimedOut) => {
                        // Abandon the slot; see drain.
                        return Err(KvError::DeadlineExceeded);
                    }
                    Err(WaitError::Down) => self.free.push(slot),
                },
                Err(PushError::TimedOut) => {
                    self.free.push(slot);
                    return Err(KvError::DeadlineExceeded);
                }
                Err(PushError::Closed) => self.free.push(slot),
            }
            // The shard died under the command. Retry across the respawn
            // if the budget and deadline allow; otherwise surface it.
            let err = self.down_error(idx);
            let retryable = matches!(err, KvError::RetryAfter(_));
            if !retryable || attempts >= self.retries {
                return Err(err);
            }
            attempts += 1;
            if !self.await_respawn(idx, deadline) {
                return Err(if self.slots[idx].is_closed() {
                    KvError::Stopped
                } else {
                    KvError::DeadlineExceeded
                });
            }
        }
    }

    /// Reads `key`.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, KvError> {
        self.call(Command::Get { key })
    }

    /// Inserts `key → value`; `Ok(false)` if the key already exists.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<bool, KvError> {
        self.call(Command::Put { key, value }).map(|r| r.is_some())
    }

    /// Removes `key`, returning the removed value.
    pub fn remove(&mut self, key: u64) -> Result<Option<u64>, KvError> {
        self.call(Command::Del { key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{EbrStore, NrStore};

    fn test_cfg() -> KvConfig {
        KvConfig {
            shards: 2,
            batch: 8,
            ring_depth: 64,
            buckets: 64,
            ..KvConfig::new()
        }
    }

    fn smoke<S: ShardStore>() {
        let svc = KvService::<S>::start(test_cfg());
        let mut client = svc.client();
        for k in 0..200u64 {
            assert_eq!(client.insert(k, k * 10), Ok(true));
        }
        for k in 0..200u64 {
            assert_eq!(client.get(k), Ok(Some(k * 10)));
        }
        for k in 0..100u64 {
            assert_eq!(client.remove(k), Ok(Some(k * 10)));
        }
        assert_eq!(client.get(0), Ok(None));
        assert_eq!(client.get(150), Ok(Some(1500)));
        svc.shutdown();
    }

    #[test]
    fn end_to_end_over_each_store() {
        smoke::<HppStore>();
        smoke::<EbrStore>();
        smoke::<NrStore>();
    }

    #[test]
    fn pipelined_replies_arrive_in_submission_order() {
        let svc = KvService::<HppStore>::start(test_cfg());
        let mut client = svc.client();
        for k in 0..100u64 {
            client.submit(Command::Put { key: k, value: k + 1 }).unwrap();
        }
        assert_eq!(client.in_flight(), 100);
        let mut replies = Vec::new();
        client.drain(|i, r| replies.push((i, r)));
        assert_eq!(client.in_flight(), 0);
        assert_eq!(replies.len(), 100);
        for (i, r) in replies {
            assert_eq!(r, Ok(Some(i as u64 + 1)), "reply {i} out of order");
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_returns_final_stats() {
        let svc = KvService::<HppStore>::start(KvConfig {
            shards: 2,
            batch: 4,
            ring_depth: 16,
            buckets: 16,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        for k in 0..64u64 {
            client.insert(k, k).unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.ops).sum::<u64>(), 64);
        assert!(stats.iter().all(|s| s.batches > 0));
    }

    #[test]
    fn commands_after_shutdown_fail_with_stopped() {
        let svc = KvService::<NrStore>::start(KvConfig {
            shards: 1,
            batch: 4,
            ring_depth: 16,
            buckets: 16,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        client.insert(1, 1).unwrap();
        svc.shutdown();
        assert_eq!(client.get(1), Err(KvError::Stopped));
        assert_eq!(client.submit(Command::Get { key: 1 }), Err(KvError::Stopped));
    }

    #[test]
    fn injected_crash_respawns_shard_on_bumped_generation() {
        let svc = KvService::<HppStore>::start(KvConfig {
            shards: 1,
            batch: 4,
            ring_depth: 32,
            buckets: 32,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        assert_eq!(client.insert(1, 11), Ok(true));
        assert_eq!(svc.generation(0), Generation(0));
        assert!(svc.inject_crash(0));
        // The one-shot call retries across the respawn on its own. The
        // respawned store is empty by contract — the previous insert is
        // gone.
        assert_eq!(client.get(1), Ok(None));
        assert_eq!(svc.generation(0), Generation(1));
        let health = svc.health();
        assert!(health.shards[0].worker_alive);
        assert_eq!(health.shards[0].respawns, 1);
        assert_eq!(health.quarantined_domains(), 1);
        let records = svc.quarantine_records(0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].generation, 0);
        if let Some(bound) = records[0].bound {
            assert!(
                records[0].settled_garbage <= bound,
                "quarantined settled garbage {} over published bound {bound}",
                records[0].settled_garbage
            );
        }
        // The new incarnation serves traffic.
        assert_eq!(client.insert(2, 22), Ok(true));
        assert_eq!(client.get(2), Ok(Some(22)));
        svc.shutdown();
    }

    #[test]
    fn unsupervised_crash_stays_dead_and_reports_stopped() {
        let svc = KvService::<HppStore>::start(
            KvConfig {
                shards: 1,
                batch: 4,
                ring_depth: 32,
                buckets: 32,
                ..KvConfig::new()
            }
            .with_supervision(false),
        );
        let mut client = svc.client();
        assert_eq!(client.insert(1, 11), Ok(true));
        assert!(svc.inject_crash(0));
        // Dead stays dead: PR-7 containment semantics.
        assert_eq!(client.get(1), Err(KvError::Stopped));
        assert!(svc.worker_gone(0));
        assert_eq!(svc.generation(0), Generation(0));
        assert!(svc.quarantine_records(0).is_empty());
        svc.shutdown();
    }
}
