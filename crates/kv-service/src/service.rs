//! Service lifecycle and the client API.

use std::sync::Arc;
use std::thread::JoinHandle;

use crate::ring::{Command, ResponseSlot};
use crate::shard::{run_worker, Shard, ShardStatsSnapshot};
use crate::store::{HppStore, ShardStore};
use crate::{shard_of_key, KvConfig, ShardDown};

/// The running service: one worker thread per shard.
///
/// ```
/// let svc = kv_service::KvService::<kv_service::HppStore>::start(
///     kv_service::KvConfig::new().with_shards(2),
/// );
/// let mut client = svc.client();
/// assert_eq!(client.insert(7, 70), Ok(true));
/// assert_eq!(client.get(7), Ok(Some(70)));
/// svc.shutdown();
/// ```
pub struct KvService<S: ShardStore = HppStore> {
    shards: Vec<Arc<Shard<S>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<S: ShardStore> KvService<S> {
    /// Builds the shards (each with its private reclamation domain) and
    /// spawns one worker per shard.
    pub fn start(cfg: KvConfig) -> Self {
        let shard_count = cfg.shards.max(1);
        let shards: Vec<Arc<Shard<S>>> = (0..shard_count)
            .map(|_| Arc::new(Shard::new(S::new_shard(cfg.buckets, cfg.policy), cfg.ring_depth)))
            .collect();
        let workers = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let batch = cfg.batch.max(1);
                std::thread::Builder::new()
                    .name(format!("kv-shard-{i}"))
                    .spawn(move || run_worker(shard, batch))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { shards, workers }
    }

    /// A new client handle. Cheap: Arc clones plus an empty slot pool.
    pub fn client(&self) -> Client<S> {
        Client {
            shards: self.shards.clone(),
            free: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.shards.len())
    }

    /// Current counters for shard `i`.
    pub fn shard_stats(&self, i: usize) -> ShardStatsSnapshot {
        self.shards[i].stats.snapshot()
    }

    /// Counters for every shard.
    pub fn stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Shard `i`'s derived worst-case garbage bound, if its scheme has one.
    pub fn garbage_bound(&self, i: usize) -> Option<u64> {
        self.shards[i].store.garbage_bound()
    }

    /// Whether shard `i`'s worker has exited (normally or by panic).
    pub fn worker_gone(&self, i: usize) -> bool {
        self.shards[i].ring.is_worker_gone()
    }

    /// Read-only access to shard `i`'s store — fault tests derive bounds
    /// (collect thresholds, slot capacities) from the live instance.
    pub fn with_store<R>(&self, i: usize, f: impl FnOnce(&S) -> R) -> R {
        f(&self.shards[i].store)
    }

    /// Graceful stop: close every ring, let workers drain what is queued,
    /// join them, then adopt-and-free whatever their teardown donated.
    /// Returns the final per-shard counters.
    pub fn shutdown(mut self) -> Vec<ShardStatsSnapshot> {
        self.stop();
        let stats = self.stats();
        self.shards.clear();
        stats
    }

    fn stop(&mut self) {
        for shard in &self.shards {
            shard.ring.close();
        }
        for worker in self.workers.drain(..) {
            // A panicked worker already reported itself; its ring is
            // retired by the guard and its garbage donated by the scheme's
            // teardown, so the join error carries no extra information.
            let _ = worker.join();
        }
        for shard in &self.shards {
            shard.store.drain_orphans();
        }
    }
}

impl<S: ShardStore> Drop for KvService<S> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// A client handle: routes commands to shards and waits for replies.
///
/// Two modes:
/// * one-shot ([`get`](Self::get) / [`insert`](Self::insert) /
///   [`remove`](Self::remove)) — submit and wait;
/// * pipelined ([`submit`](Self::submit) then [`drain`](Self::drain)) —
///   keep many commands in flight and collect replies in submission
///   order, which is what the benchmark uses to cover the rings' batching.
///
/// Reply slots are pooled and reused, so a steady-state client allocates
/// nothing per command.
pub struct Client<S: ShardStore> {
    shards: Vec<Arc<Shard<S>>>,
    free: Vec<Arc<ResponseSlot>>,
    pending: Vec<(usize, Arc<ResponseSlot>)>,
}

impl<S: ShardStore> Client<S> {
    /// Which shard serves `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.shards.len())
    }

    /// Commands submitted and not yet drained.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn take_slot(&mut self) -> Arc<ResponseSlot> {
        let slot = self.free.pop().unwrap_or_else(|| Arc::new(ResponseSlot::new()));
        slot.reset();
        slot
    }

    /// Enqueues `cmd` without waiting. Blocks (backoff) while the target
    /// ring is full; fails only if the shard is down. The reply is
    /// collected by [`drain`](Self::drain), in submission order.
    pub fn submit(&mut self, cmd: Command) -> Result<(), ShardDown> {
        let shard = self.shard_of(cmd.key());
        let slot = self.take_slot();
        match self.shards[shard].ring.push(cmd, Arc::clone(&slot)) {
            Ok(()) => {
                self.pending.push((shard, slot));
                Ok(())
            }
            Err(_) => {
                self.free.push(slot);
                Err(ShardDown)
            }
        }
    }

    /// Waits for every in-flight command, invoking `sink(index, reply)` in
    /// submission order (`index` counts from 0 within this drain).
    pub fn drain(&mut self, mut sink: impl FnMut(usize, Result<Option<u64>, ShardDown>)) {
        let pending = std::mem::take(&mut self.pending);
        for (i, (shard, slot)) in pending.into_iter().enumerate() {
            let reply = self.shards[shard].ring.wait_response(&slot);
            sink(i, reply);
            self.free.push(slot);
        }
    }

    fn call(&mut self, cmd: Command) -> Result<Option<u64>, ShardDown> {
        let shard = self.shard_of(cmd.key());
        let slot = self.take_slot();
        let ring = &self.shards[shard].ring;
        let reply = match ring.push(cmd, Arc::clone(&slot)) {
            Ok(()) => ring.wait_response(&slot),
            Err(_) => Err(ShardDown),
        };
        self.free.push(slot);
        reply
    }

    /// Reads `key`.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, ShardDown> {
        self.call(Command::Get { key })
    }

    /// Inserts `key → value`; `Ok(false)` if the key already exists.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<bool, ShardDown> {
        self.call(Command::Put { key, value }).map(|r| r.is_some())
    }

    /// Removes `key`, returning the removed value.
    pub fn remove(&mut self, key: u64) -> Result<Option<u64>, ShardDown> {
        self.call(Command::Del { key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{EbrStore, NrStore};

    fn smoke<S: ShardStore>() {
        let svc = KvService::<S>::start(KvConfig {
            shards: 2,
            batch: 8,
            ring_depth: 64,
            buckets: 64,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        for k in 0..200u64 {
            assert_eq!(client.insert(k, k * 10), Ok(true));
        }
        for k in 0..200u64 {
            assert_eq!(client.get(k), Ok(Some(k * 10)));
        }
        for k in 0..100u64 {
            assert_eq!(client.remove(k), Ok(Some(k * 10)));
        }
        assert_eq!(client.get(0), Ok(None));
        assert_eq!(client.get(150), Ok(Some(1500)));
        svc.shutdown();
    }

    #[test]
    fn end_to_end_over_each_store() {
        smoke::<HppStore>();
        smoke::<EbrStore>();
        smoke::<NrStore>();
    }

    #[test]
    fn pipelined_replies_arrive_in_submission_order() {
        let svc = KvService::<HppStore>::start(KvConfig {
            shards: 2,
            batch: 8,
            ring_depth: 64,
            buckets: 64,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        for k in 0..100u64 {
            client.submit(Command::Put { key: k, value: k + 1 }).unwrap();
        }
        assert_eq!(client.in_flight(), 100);
        let mut replies = Vec::new();
        client.drain(|i, r| replies.push((i, r)));
        assert_eq!(client.in_flight(), 0);
        assert_eq!(replies.len(), 100);
        for (i, r) in replies {
            assert_eq!(r, Ok(Some(i as u64 + 1)), "reply {i} out of order");
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_returns_final_stats() {
        let svc = KvService::<HppStore>::start(KvConfig {
            shards: 2,
            batch: 4,
            ring_depth: 16,
            buckets: 16,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        for k in 0..64u64 {
            client.insert(k, k).unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.ops).sum::<u64>(), 64);
        assert!(stats.iter().all(|s| s.batches > 0));
    }

    #[test]
    fn commands_after_shutdown_fail_with_shard_down() {
        let svc = KvService::<NrStore>::start(KvConfig {
            shards: 1,
            batch: 4,
            ring_depth: 16,
            buckets: 16,
            ..KvConfig::new()
        });
        let mut client = svc.client();
        client.insert(1, 1).unwrap();
        svc.shutdown();
        assert_eq!(client.get(1), Err(ShardDown));
        assert_eq!(client.submit(Command::Get { key: 1 }), Err(ShardDown));
    }
}
