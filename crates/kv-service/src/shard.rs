//! One shard: a command ring, a store with its private domain, and the
//! worker loop that drains the ring in batches.
//!
//! Batching is the perf lever: the worker touches the doorbell, the stats
//! block, and the garbage sample **once per batch**, not once per command,
//! and its scheme handle (hazard slots, local bags) is registered once for
//! the shard's lifetime. Commands execute back-to-back on a warm cache.
//!
//! Crash story: `WorkerGuard` retires the ring on *any* exit — normal
//! shutdown or unwind — so queued commands fail fast instead of hanging
//! clients, and `ReplyGuard` fails the command that was mid-execution when
//! a store op panicked. Scheme-level state is then reclaimed by the
//! handle's own panic-safe teardown (donate orphans, release slots), which
//! `KvService::shutdown` drains back via `ShardStore::drain_orphans`.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, AtomicU8};
use std::sync::Arc;
use std::time::Duration;

use smr_common::policy::Verdict;
use smr_common::watchdog::GarbageWatchdog;

use crate::ring::{Command, Entry, Ring};
use crate::store::ShardStore;
use crate::supervisor::SupervisorCtl;

/// How long the per-shard watchdog lets the garbage level sit still before
/// calling the shard's collector stalled.
const WATCHDOG_STALL_WINDOW: Duration = Duration::from_millis(50);
/// Watchdog garbage ceiling for stores without a derived bound (EBR).
const WATCHDOG_DEFAULT_BOUND: usize = 4096;
/// Batches between watchdog samples. Sampling is clock + verdict-store
/// traffic on the drain loop; at per-batch cadence it cost ~40% of
/// single-shard throughput on a 1-core host, and anything far below the
/// 50 ms stall window detects a stall just as fast.
const WATCHDOG_SAMPLE_BATCHES: u32 = 32;

/// Point-in-time view of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Commands executed.
    pub ops: u64,
    /// Worker wakeup-drain cycles.
    pub batches: u64,
    /// Garbage at the last per-batch sample.
    pub garbage: u64,
    /// High-water garbage across all samples.
    pub peak_garbage: u64,
    /// Largest single batch drained.
    pub max_batch: u64,
}

/// Shard counters, written by the single worker, read by anyone.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    ops: AtomicU64,
    batches: AtomicU64,
    garbage: AtomicU64,
    peak_garbage: AtomicU64,
    max_batch: AtomicU64,
}

impl ShardStats {
    fn record_batch(&self, len: u64, garbage: u64) {
        self.ops.fetch_add(len, Relaxed);
        self.batches.fetch_add(1, Relaxed);
        self.garbage.store(garbage, Relaxed);
        self.peak_garbage.fetch_max(garbage, Relaxed);
        self.max_batch.fetch_max(len, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            ops: self.ops.load(Relaxed),
            batches: self.batches.load(Relaxed),
            garbage: self.garbage.load(Relaxed),
            peak_garbage: self.peak_garbage.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
        }
    }
}

pub(crate) struct Shard<S> {
    pub(crate) ring: Ring,
    pub(crate) store: S,
    pub(crate) stats: ShardStats,
    /// Latest watchdog verdict ([`Verdict::encode`]), written by the
    /// worker's sampling, read by [`KvService::health`](crate::KvService).
    verdict: AtomicU8,
}

impl<S: ShardStore> Shard<S> {
    pub(crate) fn new(store: S, ring_depth: usize) -> Self {
        Self {
            ring: Ring::with_capacity(ring_depth),
            store,
            stats: ShardStats::default(),
            verdict: AtomicU8::new(Verdict::Unknown.encode()),
        }
    }

    /// The worker's latest watchdog verdict for this shard incarnation.
    pub(crate) fn verdict(&self) -> Verdict {
        Verdict::decode(self.verdict.load(Relaxed))
    }
}

/// Fails the in-flight command if the store op below panics.
struct ReplyGuard(Arc<crate::ring::ResponseSlot>);

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        self.0.drop_if_pending();
    }
}

fn execute<S: ShardStore>(store: &S, handle: &mut S::Handle, (cmd, resp): Entry) {
    let reply = ReplyGuard(resp);
    let result = match cmd {
        Command::Get { key } => store.get(handle, key),
        Command::Put { key, value } => {
            if store.insert(handle, key, value) {
                Some(value)
            } else {
                None
            }
        }
        Command::Del { key } => store.remove(handle, key),
        Command::Crash { .. } => panic!("kv worker: injected crash command"),
    };
    reply.0.complete(result);
}

/// The shard worker: park-drain-execute until the ring closes, then flush
/// reclamation and exit. `batch_max` commands per wakeup, tops. `ctl`, when
/// present, is nudged as the worker exits so the supervisor reacts to a
/// death immediately instead of at its next poll tick.
pub(crate) fn run_worker<S: ShardStore>(
    shard: Arc<Shard<S>>,
    batch_max: usize,
    ctl: Option<Arc<SupervisorCtl>>,
) {
    /// Retires the ring on any exit, unwind included, then wakes the
    /// supervisor (after retirement, so the death is already observable).
    struct WorkerGuard<'a>(&'a Ring, Option<&'a SupervisorCtl>);
    impl Drop for WorkerGuard<'_> {
        fn drop(&mut self) {
            self.0.retire();
            if let Some(ctl) = self.1 {
                ctl.nudge();
            }
        }
    }

    let mut handle = shard.store.handle();
    let _guard = WorkerGuard(&shard.ring, ctl.as_deref());
    // Per-shard watchdog, fed every `WATCHDOG_SAMPLE_BATCHES` batches. The
    // progress token advances whenever the shard's garbage level drops (or
    // is zero) — with one worker per shard, local garbage shrinks iff this
    // shard's collector reclaimed something. The resulting verdict feeds
    // back into the shard's trigger policy (`Adaptive` tightens under
    // pressure).
    let bound = shard
        .store
        .garbage_bound()
        .map(|b| b as usize)
        .unwrap_or(WATCHDOG_DEFAULT_BOUND);
    let mut watchdog = GarbageWatchdog::new(bound, WATCHDOG_STALL_WINDOW);
    let mut progress_token = 0u64;
    let mut prev_garbage = 0u64;
    let mut batches_since_sample = 0u32;
    loop {
        let Some(first) = shard.ring.pop() else {
            if shard.ring.is_closed() {
                break;
            }
            shard.ring.wait_for_work();
            continue;
        };
        execute(&shard.store, &mut handle, first);
        let mut drained = 1u64;
        while drained < batch_max as u64 {
            let Some(entry) = shard.ring.pop() else { break };
            execute(&shard.store, &mut handle, entry);
            drained += 1;
        }
        smr_common::fault_point!("kv::worker::batch");
        let garbage = S::garbage(&handle);
        batches_since_sample += 1;
        if batches_since_sample >= WATCHDOG_SAMPLE_BATCHES {
            batches_since_sample = 0;
            if garbage == 0 || garbage < prev_garbage {
                progress_token += 1;
            }
            prev_garbage = garbage;
            let status = watchdog.observe(progress_token, garbage as usize);
            let verdict = Verdict::from(&status);
            shard.verdict.store(verdict.encode(), Relaxed);
            shard.store.report_verdict(verdict);
        }
        shard.stats.record_batch(drained, garbage);
    }
    // Closed and drained: flush what the scheme lets us flush, then let the
    // handle's teardown donate the rest (protected stragglers) as orphans.
    shard.store.quiesce(&mut handle);
    shard.stats.record_batch(0, S::garbage(&handle));
}
